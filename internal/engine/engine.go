// Package engine ties the substrates together into an embedded
// relational DBMS: catalog, paged storage, lock manager, optimizer,
// executor, plan cache — and the integrated monitor, whose sensors sit
// directly in the statement path exactly as the paper prescribes
// (part of each module, not a watchdog on top).
package engine

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/catalog"
	"repro/internal/executor"
	"repro/internal/lock"
	"repro/internal/monitor"
	"repro/internal/sqltypes"
	"repro/internal/storage"
)

// Config configures a database instance.
type Config struct {
	// Dir is the database directory (created if absent).
	Dir string
	// PoolPages sizes the shared buffer pool (default 2048 pages =
	// 8 MiB).
	PoolPages int
	// Monitor is the integrated monitor; nil runs the engine without
	// any monitoring code active — the paper's "Original" setup.
	Monitor *monitor.Monitor
	// PlanCacheSize bounds the number of cached prepared plans
	// (default 512).
	PlanCacheSize int
	// GroupCommitInterval is the WAL group-commit batching window
	// (default ~1ms; negative forces synchronous per-commit fsync).
	GroupCommitInterval time.Duration
	// WALOpen substitutes the WAL file implementation — the walfault
	// crash-simulation seam. nil uses the real file.
	WALOpen func(string) (storage.WALFile, error)
}

// DB is an embedded database instance.
type DB struct {
	dir   string
	cat   *catalog.Catalog
	pool  *storage.Pool
	locks *lock.Manager
	mon   *monitor.Monitor
	wal   *storage.WAL
	txns  *txnManager   // MVCC transaction ids, snapshots, outcomes
	redo  recoveryStats // what crash recovery did at Open

	// Vacuum telemetry (the MVCC garbage-collection counters behind
	// engine_mvcc_* and ws_mvcc).
	vacRuns      atomic.Int64
	vacReclaimed atomic.Int64 // dead version slots reclaimed
	vacCleared   atomic.Int64 // aborted xmax stamps cleared
	vacChainP95  atomic.Int64 // last pass's p95 version-chain length

	// Morsel-parallelism telemetry (behind engine_parallel_* and the
	// parallel_* statistics columns).
	parallelQueries     atomic.Int64 // statements that fanned out at least once
	morselsDispatched   atomic.Int64 // morsels handed to workers
	parallelWorkerNanos atomic.Int64 // summed worker wall time

	mu      sync.RWMutex // guards tables and virtual maps
	tables  map[string]*tableHandle
	virtual map[string]*virtualTable

	plans *planCache

	nextSession     atomic.Int64
	currentSessions atomic.Int64
	peakSessions    atomic.Int64
	statements      atomic.Int64
}

type tableHandle struct {
	meta    *catalog.Table
	heap    *storage.Heap
	primary *storage.BTree            // non-nil iff Structure == BTREE
	indexes map[string]*storage.BTree // real secondary indexes by lower name
	// sideLog, when non-nil, is the capture log of an online index
	// build in progress on this table: insertRow/deleteRow append the
	// index mutations the half-built index cannot receive yet.
	sideLog atomic.Pointer[indexSideLog]
}

type virtualTable struct {
	meta     *catalog.Table
	provider func() []sqltypes.Row
}

// Open opens (or creates) the database in cfg.Dir.
func Open(cfg Config) (*DB, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("engine: Config.Dir is required")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	if cfg.PoolPages <= 0 {
		cfg.PoolPages = 2048
	}
	if cfg.PlanCacheSize <= 0 {
		cfg.PlanCacheSize = 512
	}
	cat, err := catalog.Load(cfg.Dir)
	if err != nil {
		return nil, err
	}
	// Crash recovery replays the WAL against the raw page files before
	// any page enters the buffer pool.
	redo, err := recoverWAL(cfg.Dir)
	if err != nil {
		return nil, err
	}
	// Seed the MVCC transaction manager: ids that finished a statement
	// (or were in flight at the last checkpoint) without an MVCC commit
	// record are aborted — their versions stay on disk, invisible.
	txns := newTxnManager()
	ts := cat.TxnStatus()
	crashAborted := map[uint64]bool{}
	for id := range redo.OwnersSeen {
		crashAborted[id] = true
	}
	for _, id := range ts.Inflight {
		crashAborted[id] = true
	}
	for id := range redo.OwnersCommitted {
		delete(crashAborted, id)
	}
	txns.restore(ts, crashAborted, redo.MaxOwner)
	if len(ts.Inflight) > 0 || len(crashAborted) > 0 {
		// Persist the resolved outcomes before the log (and with it the
		// commit records that proved them) is reset: a crash in between
		// must not re-derive a different answer.
		cat.SetTxnStatus(txns.status())
		if err := cat.Save(); err != nil {
			return nil, err
		}
	}
	if redo.ResetLSN > 0 {
		if err := storage.ResetWAL(filepath.Join(cfg.Dir, storage.WALFileName), redo.ResetLSN); err != nil {
			return nil, err
		}
	}
	wal, err := storage.OpenWAL(filepath.Join(cfg.Dir, storage.WALFileName), storage.WALOptions{
		GroupCommitInterval: cfg.GroupCommitInterval,
		OpenFile:            cfg.WALOpen,
	})
	if err != nil {
		return nil, err
	}
	db := &DB{
		dir:     cfg.Dir,
		cat:     cat,
		pool:    storage.NewPool(cfg.PoolPages),
		locks:   lock.NewManager(),
		mon:     cfg.Monitor,
		wal:     wal,
		txns:    txns,
		redo:    redo,
		tables:  map[string]*tableHandle{},
		virtual: map[string]*virtualTable{},
		plans:   newPlanCache(cfg.PlanCacheSize),
	}
	// A Building index entry is a crashed online build: drop it (and
	// its file), then sweep data files the catalog no longer references
	// — the DROP TABLE crash window leaves exactly those behind.
	if err := db.cleanOrphans(); err != nil {
		db.Close()
		return nil, err
	}
	for _, t := range cat.Tables() {
		if err := db.openTable(t); err != nil {
			db.Close()
			return nil, err
		}
	}
	if redo.Redo > 0 || redo.Undo > 0 || len(crashAborted) > 0 {
		// Recovery moved data under the catalog's row counts, or the
		// crash aborted transactions whose versions must stop counting.
		if err := db.recountAfterRecovery(); err != nil {
			db.Close()
			return nil, err
		}
	}
	return db, nil
}

// cleanOrphans runs once at Open, after WAL recovery and before any
// table file is opened. It drops catalog index entries still marked
// Building (a crashed online build) together with their files, then
// removes every t_/p_/i_ data file in the directory that the catalog
// does not reference — the residue of a crash between DROP TABLE's
// catalog save and its file removal.
func (db *DB) cleanOrphans() error {
	for _, ix := range db.cat.Indexes() {
		if !ix.Building {
			continue
		}
		if err := db.cat.DropIndex(ix.Name); err != nil {
			return err
		}
		if err := removeIfExists(db.indexPath(ix.Name)); err != nil {
			return err
		}
	}
	referenced := map[string]bool{}
	for _, t := range db.cat.Tables() {
		referenced[db.tablePath(t.Name)] = true
		referenced[db.primaryPath(t.Name)] = true
	}
	for _, ix := range db.cat.Indexes() {
		if !ix.Virtual {
			referenced[db.indexPath(ix.Name)] = true
		}
	}
	entries, err := os.ReadDir(db.dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".dat") {
			continue
		}
		if !strings.HasPrefix(name, "t_") && !strings.HasPrefix(name, "p_") && !strings.HasPrefix(name, "i_") {
			continue
		}
		path := filepath.Join(db.dir, name)
		if !referenced[path] {
			if err := os.Remove(path); err != nil {
				return err
			}
		}
	}
	return nil
}

// newFile opens a page file attached to both the pool and the WAL.
func (db *DB) newFile(path string) (*storage.File, error) {
	f, err := storage.OpenFile(path, db.pool)
	if err != nil {
		return nil, err
	}
	f.AttachWAL(db.wal)
	return f, nil
}

func (db *DB) tablePath(name string) string {
	return filepath.Join(db.dir, "t_"+strings.ToLower(name)+".dat")
}

func (db *DB) primaryPath(name string) string {
	return filepath.Join(db.dir, "p_"+strings.ToLower(name)+".dat")
}

func (db *DB) indexPath(name string) string {
	return filepath.Join(db.dir, "i_"+strings.ToLower(name)+".dat")
}

// openTable opens the storage files behind a catalog table.
func (db *DB) openTable(meta *catalog.Table) error {
	// A catalog entry with rows but no heap file is corruption (a
	// historical DROP TABLE crash window could produce it). Opening
	// would silently recreate an empty file and report the table as
	// empty; fail with a diagnosis instead.
	if meta.Rows > 0 {
		if _, serr := os.Stat(db.tablePath(meta.Name)); os.IsNotExist(serr) {
			return fmt.Errorf("engine: catalog lists table %s with %d rows but its data file %s is missing (incomplete DROP TABLE or external deletion); restore the file or remove the catalog entry",
				meta.Name, meta.Rows, db.tablePath(meta.Name))
		}
	}
	f, err := db.newFile(db.tablePath(meta.Name))
	if err != nil {
		return err
	}
	h := &tableHandle{
		meta:    meta,
		heap:    storage.OpenHeap(f, meta.MainPages, meta.Rows),
		indexes: map[string]*storage.BTree{},
	}
	if meta.Structure == catalog.BTree {
		pf, err := db.newFile(db.primaryPath(meta.Name))
		if err != nil {
			f.Close()
			return err
		}
		if pf.Pages() == 0 {
			h.primary, err = storage.CreateBTree(pf)
		} else {
			h.primary, err = storage.OpenBTree(pf)
		}
		if err != nil {
			f.Close()
			pf.Close()
			return err
		}
	}
	for _, ix := range db.cat.TableIndexes(meta.Name, false) {
		xf, err := db.newFile(db.indexPath(ix.Name))
		if err != nil {
			return err
		}
		var bt *storage.BTree
		if xf.Pages() == 0 {
			bt, err = storage.CreateBTree(xf)
		} else {
			bt, err = storage.OpenBTree(xf)
		}
		if err != nil {
			xf.Close()
			return err
		}
		h.indexes[strings.ToLower(ix.Name)] = bt
	}
	db.mu.Lock()
	db.tables[strings.ToLower(meta.Name)] = h
	db.mu.Unlock()
	return nil
}

func (db *DB) handle(name string) *tableHandle {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.tables[strings.ToLower(name)]
}

func (db *DB) virtualTable(name string) *virtualTable {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.virtual[strings.ToLower(name)]
}

// RegisterVirtual exposes an in-memory row provider as a read-only
// virtual table — the IMA mechanism: each class of in-memory objects
// is registered as a table and becomes queryable over plain SQL.
func (db *DB) RegisterVirtual(name string, schema sqltypes.Schema, provider func() []sqltypes.Row) error {
	if db.handle(name) != nil || db.cat.Table(name) != nil {
		return fmt.Errorf("engine: table %s already exists", name)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	key := strings.ToLower(name)
	if _, dup := db.virtual[key]; dup {
		return fmt.Errorf("engine: virtual table %s already registered", name)
	}
	db.virtual[key] = &virtualTable{
		meta: &catalog.Table{
			Name:      name,
			Schema:    schema,
			Structure: catalog.Heap,
			MainPages: 1,
			Rows:      64, // nominal planning estimate
		},
		provider: provider,
	}
	return nil
}

// Monitor returns the attached monitor, or nil.
func (db *DB) Monitor() *monitor.Monitor { return db.mon }

// Catalog returns the system catalog.
func (db *DB) Catalog() *catalog.Catalog { return db.cat }

// LockStats returns lock-manager counters (Figure 8's data source).
func (db *DB) LockStats() lock.Stats { return db.locks.Stats() }

// PoolStats returns buffer-pool counters.
func (db *DB) PoolStats() storage.PoolStats { return db.pool.Stats() }

// PoolCapacity returns the buffer pool's current frame budget.
func (db *DB) PoolCapacity() int { return db.pool.Capacity() }

// ResizePool changes the buffer pool's frame budget at runtime —
// growing adds frames immediately, shrinking evicts down to the new
// budget without blocking the workload — and returns the effective new
// capacity. This is the execution half of the analyzer's buffer-pool
// recommendation.
func (db *DB) ResizePool(pages int) int { return db.pool.Resize(pages) }

// Dir returns the database directory.
func (db *DB) Dir() string { return db.dir }

// SizeBytes returns the total on-disk size of all table and index
// files — the "size of the data files" measure of the paper's
// Figure 7.
func (db *DB) SizeBytes() int64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var total int64
	for _, h := range db.tables {
		total += h.heap.File().SizeBytes()
		if h.primary != nil {
			total += h.primary.File().SizeBytes()
		}
		for _, ix := range h.indexes {
			total += ix.File().SizeBytes()
		}
	}
	return total
}

// syncMeta copies runtime counters into the catalog entry (main pages
// and row counts drift during DML). It goes through the catalog's lock
// because commit paths run it concurrently with checkpoint's
// Catalog.Save marshaling the same entry.
func (db *DB) syncMeta(h *tableHandle) {
	db.cat.SyncTableStats(h.meta.Name, h.heap.Rows(), h.heap.MainPages())
}

// Checkpoint runs a fuzzy checkpoint: a begin-checkpoint record fixes
// the redo scan start, every table file is flushed AND fsynced (the
// pre-WAL version only flushed, so a checkpoint guaranteed nothing),
// the catalog is persisted, and the end-checkpoint record — durable
// before Checkpoint returns — publishes the scan start to recovery.
func (db *DB) Checkpoint() error {
	scanStart := db.wal.CheckpointBegin()
	db.mu.RLock()
	handles := make([]*tableHandle, 0, len(db.tables))
	for _, h := range db.tables {
		handles = append(handles, h)
	}
	db.mu.RUnlock()
	for _, h := range handles {
		db.syncMeta(h)
		if err := h.heap.File().Sync(); err != nil {
			return err
		}
		if h.primary != nil {
			if err := h.primary.File().Sync(); err != nil {
				return err
			}
		}
		for _, ix := range h.indexes {
			if err := ix.File().Sync(); err != nil {
				return err
			}
		}
	}
	if db.txns != nil {
		// The checkpoint's catalog image carries the transaction status
		// (next id, aborted set, in-flight ids) so recovery can rebuild
		// outcomes even after the log is compacted away.
		db.cat.SetTxnStatus(db.txns.status())
	}
	if err := db.cat.Save(); err != nil {
		return err
	}
	return db.wal.CheckpointEnd(scanStart)
}

// Close checkpoints and closes every file.
func (db *DB) Close() error {
	var firstErr error
	if err := db.Checkpoint(); err != nil {
		firstErr = err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	for _, h := range db.tables {
		if err := h.heap.File().Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		if h.primary != nil {
			if err := h.primary.File().Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		for _, ix := range h.indexes {
			if err := ix.File().Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	db.tables = map[string]*tableHandle{}
	if err := db.wal.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// WAL returns the write-ahead log (nil only before Open finished).
func (db *DB) WAL() *storage.WAL { return db.wal }

// SetGroupCommitInterval retunes the WAL group-commit window at
// runtime; <= 0 switches to synchronous per-commit fsync.
func (db *DB) SetGroupCommitInterval(d time.Duration) {
	if db.wal != nil {
		db.wal.SetGroupCommitInterval(d)
	}
}

// WALFsyncLatency returns the WAL fsync latency histogram in the
// monitor's bucket scheme, plus the cumulative nanosecond sum, ready
// for the telemetry exporter.
func (db *DB) WALFsyncLatency() (monitor.LatencyCounts, int64) {
	var lc monitor.LatencyCounts
	if db.wal == nil {
		return lc, 0
	}
	b, sum := db.wal.FsyncLatency()
	copy(lc[:], b[:])
	return lc, sum
}

// SystemStats is the engine-wide statistics sample the IMA statistics
// table and the storage daemon publish (the paper's third monitoring
// category).
type SystemStats struct {
	CurrentSessions int64
	PeakSessions    int64
	Statements      int64
	LocksHeld       int64
	LockWaits       int64
	LockWaitNanos   int64 // cumulative wallclock sessions spent parked on lock queues
	Deadlocks       int64
	CacheHits       int64
	CacheMisses     int64
	DiskReads       int64
	DiskWrites      int64
	DBBytes         int64
	CacheEvictions  int64
	CacheResident   int64
	PinWaits        int64
	WALBytes        int64 // bytes appended to the WAL
	WALFsyncs       int64 // WAL fsyncs issued (group commit amortizes these)
	RedoRecords     int64 // WAL records replayed (redo + undo) at the last Open
	RedoNanos       int64 // wallclock nanoseconds of the last recovery pass
	// Morsel-parallelism counters (appended; consumers address columns
	// positionally).
	ParallelQueries     int64 // statements that ran a parallel subtree
	MorselsDispatched   int64 // morsels handed to scan workers
	ParallelWorkerNanos int64 // summed parallel-worker wall time
}

// Stats samples the engine-wide statistics.
func (db *DB) Stats() SystemStats {
	ls := db.locks.Stats()
	ps := db.pool.Stats()
	ws := db.wal.Stats()
	return SystemStats{
		CurrentSessions: db.currentSessions.Load(),
		PeakSessions:    db.peakSessions.Load(),
		Statements:      db.statements.Load(),
		LocksHeld:       int64(ls.Held),
		LockWaits:       ls.Waits,
		LockWaitNanos:   ls.WaitNanos,
		Deadlocks:       ls.Deadlocks,
		CacheHits:       ps.Hits,
		CacheMisses:     ps.Misses,
		DiskReads:       ps.DiskReads,
		DiskWrites:      ps.DiskWrite,
		DBBytes:         db.SizeBytes(),
		CacheEvictions:  ps.Evictions,
		CacheResident:   ps.Resident,
		PinWaits:        ps.PinWaits,
		WALBytes:        ws.Bytes,
		WALFsyncs:       ws.Fsyncs,
		RedoRecords:     db.redo.Redo + db.redo.Undo,
		RedoNanos:       db.redo.Nanos,

		ParallelQueries:     db.parallelQueries.Load(),
		MorselsDispatched:   db.morselsDispatched.Load(),
		ParallelWorkerNanos: db.parallelWorkerNanos.Load(),
	}
}

// executorStorage adapts the DB to the executor's Storage interface.
// prof, set only for phase-2 flagged statements, threads wait
// attribution into the iterators the read paths hand out. snap is the
// executing statement's visibility snapshot; every row and batch
// iterator filters through it.
type executorStorage struct {
	db   *DB
	prof *storage.WaitProf
	snap *snapshot
}

// snapshot returns the statement's snapshot, falling back to current
// committed reality for internal callers that scan outside a session.
func (s executorStorage) snapshot() *snapshot {
	if s.snap != nil {
		return s.snap
	}
	return s.db.txns.realitySnapshot()
}

var _ executor.Storage = executorStorage{}

// profPool recycles wait profilers across flagged statement
// executions, keeping the phase-2 path allocation-free at steady
// state.
var profPool = sync.Pool{New: func() any { return new(storage.WaitProf) }}

// MvccStats is the engine's MVCC and vacuum statistics sample, exported
// through ima_mvcc, ws_mvcc and the engine_mvcc_* metrics.
type MvccStats struct {
	TxnBegins           int64
	TxnCommits          int64
	TxnAborts           int64
	WriteConflicts      int64 // first-updater-wins aborts
	InflightTxns        int64
	ActiveSnapshots     int64
	AbortedIDs          int64 // aborted ids awaiting vacuum retirement
	OldestSnapshotNanos int64 // age of the oldest active snapshot
	VacuumRuns          int64
	VacuumReclaimed     int64 // dead version slots reclaimed
	VacuumCleared       int64 // aborted xmax stamps cleared
	RetiredIDs          int64 // aborted ids vacuum proved unreferenced
	ChainLenP95         int64 // p95 version-chain length at the last vacuum
}

// MvccStats samples the MVCC counters.
func (db *DB) MvccStats() MvccStats {
	inflight, snaps, abortedIDs := db.txns.counts()
	return MvccStats{
		TxnBegins:           db.txns.begins.Load(),
		TxnCommits:          db.txns.commits.Load(),
		TxnAborts:           db.txns.aborts.Load(),
		WriteConflicts:      db.txns.conflicts.Load(),
		InflightTxns:        int64(inflight),
		ActiveSnapshots:     int64(snaps),
		AbortedIDs:          int64(abortedIDs),
		OldestSnapshotNanos: int64(db.txns.oldestSnapshotAge(time.Now())),
		VacuumRuns:          db.vacRuns.Load(),
		VacuumReclaimed:     db.vacReclaimed.Load(),
		VacuumCleared:       db.vacCleared.Load(),
		RetiredIDs:          db.txns.retired.Load(),
		ChainLenP95:         db.vacChainP95.Load(),
	}
}

// TableState is the physical state of one table, as the IMA tables
// report it.
type TableState struct {
	Pages         uint32
	OverflowPages uint32
	Rows          int64
}

// TableState returns the physical state of the named table (zeroes for
// unknown or virtual tables).
func (db *DB) TableState(name string) TableState {
	h := db.handle(name)
	if h == nil {
		return TableState{}
	}
	return TableState{
		Pages:         h.heap.Pages(),
		OverflowPages: h.heap.OverflowPages(),
		Rows:          h.heap.Rows(),
	}
}
