package engine_test

// Engine-level concurrency integration test: many sessions issue mixed
// point selects and joins against one DB with the monitor and the
// storage daemon both live, then the IMA virtual tables are checked
// for consistency — no duplicate statement hashes, frequencies that
// sum to the monitor's cumulative execution count, and workload rows
// that all resolve to a known statement. This exercises the sharded
// monitor through the full stack (sensors → shards → snapshot merge →
// virtual tables) rather than through the monitor API alone.

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/daemon"
	"repro/internal/engine"
	"repro/internal/ima"
	"repro/internal/monitor"
)

func TestConcurrentSessionsIMAConsistency(t *testing.T) {
	dir := t.TempDir()
	mon := monitor.New(monitor.Config{})
	db, err := engine.Open(engine.Config{Dir: filepath.Join(dir, "src"), PoolPages: 256, Monitor: mon})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := ima.Register(db, mon); err != nil {
		t.Fatal(err)
	}
	target, err := engine.Open(engine.Config{Dir: filepath.Join(dir, "wdb"), PoolPages: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer target.Close()

	// Schema and data: two joinable tables.
	setup := db.NewSession()
	setupStmts := 0
	exec := func(sql string) {
		t.Helper()
		if _, err := setup.Exec(sql); err != nil {
			t.Fatal(err)
		}
		setupStmts++
	}
	exec("CREATE TABLE item (id INTEGER PRIMARY KEY, name VARCHAR(32))")
	exec("CREATE TABLE part (id INTEGER PRIMARY KEY, item_ref INTEGER)")
	for base := 0; base < 200; base += 50 {
		vi, vp := "", ""
		for i := base; i < base+50; i++ {
			if vi != "" {
				vi += ", "
				vp += ", "
			}
			vi += fmt.Sprintf("(%d, 'item%03d')", i, i)
			vp += fmt.Sprintf("(%d, %d)", i, (i*7)%200)
		}
		exec("INSERT INTO item (id, name) VALUES " + vi)
		exec("INSERT INTO part (id, item_ref) VALUES " + vp)
	}
	setup.Close()

	// Statement pool: far fewer distinct texts than the default 1000
	// capacity, so nothing is evicted and frequencies must be exact.
	const pool = 64
	texts := make([]string, pool)
	for i := range texts {
		if i%2 == 0 {
			texts[i] = fmt.Sprintf("SELECT name FROM item WHERE id = %d", i)
		} else {
			texts[i] = fmt.Sprintf(
				"SELECT i.name FROM item i JOIN part p ON i.id = p.item_ref WHERE p.id = %d", i)
		}
	}
	issued := make([]atomic.Int64, pool)

	// Storage daemon live during the run: FlushOnFull plus a short
	// interval, so workload drains race with the writers.
	d, err := daemon.New(daemon.Config{
		Source: db, Mon: mon, Target: target,
		Interval: 5 * time.Millisecond, FlushOnFull: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	daemonDone := make(chan error, 1)
	go func() { daemonDone <- d.Run(ctx) }()

	goroutines := 8
	each := 150
	if testing.Short() {
		goroutines, each = 4, 40
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s := db.NewSession()
			defer s.Close()
			for i := 0; i < each; i++ {
				k := (g*each + i*13) % pool
				if _, err := s.Exec(texts[k]); err != nil {
					t.Error(err)
					return
				}
				issued[k].Add(1)
			}
		}(g)
	}
	wg.Wait()
	cancel()
	if err := <-daemonDone; err != nil && err != context.Canceled {
		t.Fatalf("daemon: %v", err)
	}

	total := int64(goroutines * each)
	if got := mon.TotalStatements(); got != total+int64(setupStmts) {
		t.Fatalf("TotalStatements = %d, want %d (cumulative count must survive daemon drains)",
			got, total+int64(setupStmts))
	}

	// Read the IMA tables through SQL, like any monitoring client.
	// ima_workload is read first: the statements table read afterwards
	// then includes the workload query itself, so every workload hash
	// must resolve against it.
	reader := db.NewSession()
	defer reader.Close()
	wlRes, err := reader.Exec("SELECT hash FROM ima_workload")
	if err != nil {
		t.Fatal(err)
	}
	stRes, err := reader.Exec("SELECT hash, query_text, frequency FROM ima_statements")
	if err != nil {
		t.Fatal(err)
	}

	byHash := map[int64]bool{}
	byText := map[string]int64{}
	var sumFreq int64
	for _, row := range stRes.Rows {
		hash, text, freq := row[0].I, row[1].S, row[2].I
		if byHash[hash] {
			t.Fatalf("duplicate hash %d in ima_statements", hash)
		}
		byHash[hash] = true
		if _, dup := byText[text]; dup {
			t.Fatalf("duplicate text in ima_statements: %q", text)
		}
		byText[text] = freq
		sumFreq += freq
	}

	// Every monitored execution is one frequency count: the workload,
	// the setup, plus the ima_workload query that committed before the
	// statements read started.
	if want := total + int64(setupStmts) + 1; sumFreq != want {
		t.Fatalf("sum(frequency) over ima_statements = %d, want %d", sumFreq, want)
	}
	for k, text := range texts {
		if got, want := byText[text], issued[k].Load(); got != want {
			t.Fatalf("frequency(%q) = %d, want %d", text, got, want)
		}
	}
	for _, row := range wlRes.Rows {
		if !byHash[row[0].I] {
			t.Fatalf("ima_workload hash %d has no ima_statements row", row[0].I)
		}
	}
}
