package engine

import (
	"errors"
	"fmt"
	"math/rand"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/sqltypes"
)

// The vectorized batch pipeline must be observationally identical to
// the row-at-a-time pipeline: same result rows, same monitor tuple
// counts, same EXPLAIN ANALYZE per-operator actuals. These tests drive
// both paths through the public session surface and compare.

// runBothModes executes sql once in row mode and once in batch mode on
// the same session (so the second run hits the plan cache — the two
// executions share one compiled plan, exercising exactly the two open
// paths).
func runBothModes(t *testing.T, s *Session, sql string) (rowRes, batchRes *Result) {
	t.Helper()
	s.SetBatchExec(false)
	rowRes = mustExec(t, s, sql)
	s.SetBatchExec(true)
	batchRes = mustExec(t, s, sql)
	return rowRes, batchRes
}

// canonRows renders each row as its order-preserving key encoding, a
// canonical comparable form.
func canonRows(rows []sqltypes.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = string(sqltypes.EncodeKey(nil, r...))
	}
	return out
}

// assertSameRows compares result sets: exact sequence when the query
// fixes an order, multiset equality otherwise.
func assertSameRows(t *testing.T, sql string, rowRes, batchRes *Result) {
	t.Helper()
	a, b := canonRows(rowRes.Rows), canonRows(batchRes.Rows)
	if !strings.Contains(strings.ToUpper(sql), "ORDER BY") {
		sort.Strings(a)
		sort.Strings(b)
	}
	if len(a) != len(b) {
		t.Fatalf("%s:\nrow path %d rows, batch path %d rows", sql, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s:\nrow %d differs:\nrow path:   %q\nbatch path: %q", sql, i, a[i], b[i])
		}
	}
}

// TestQuickBatchRowEquivalence is the property suite: for each seed a
// fresh randomized pair of tables (sizes, values, NULL density all
// seed-derived) and a set of randomized queries over them — filters,
// grouped aggregates, joins, DISTINCT, ORDER BY, LIMIT — run through
// both pipelines and compared.
func TestQuickBatchRowEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	db := testDB(t)
	s := db.NewSession()
	defer s.Close()

	round := 0
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		round++
		t1 := fmt.Sprintf("ql%d", round)
		t2 := fmt.Sprintf("qr%d", round)
		mustExec(t, s, fmt.Sprintf(
			"CREATE TABLE %s (id INTEGER PRIMARY KEY, a INTEGER, b FLOAT, c VARCHAR(16))", t1))
		mustExec(t, s, fmt.Sprintf(
			"CREATE TABLE %s (k INTEGER PRIMARY KEY, a INTEGER, d VARCHAR(16))", t2))

		n1 := 100 + rng.Intn(300)
		n2 := 20 + rng.Intn(80)
		tags := []string{"'red'", "'green'", "'blue'", "'cyan'", "NULL"}
		var vals []string
		for i := 0; i < n1; i++ {
			a := "NULL"
			if rng.Intn(10) > 0 {
				a = fmt.Sprint(rng.Intn(50))
			}
			vals = append(vals, fmt.Sprintf("(%d, %s, %.2f, %s)",
				i, a, rng.Float64()*100, tags[rng.Intn(len(tags))]))
		}
		mustExec(t, s, fmt.Sprintf("INSERT INTO %s (id, a, b, c) VALUES %s", t1, strings.Join(vals, ", ")))
		vals = vals[:0]
		for i := 0; i < n2; i++ {
			vals = append(vals, fmt.Sprintf("(%d, %d, 'd%02d')", i, rng.Intn(50), rng.Intn(30)))
		}
		mustExec(t, s, fmt.Sprintf("INSERT INTO %s (k, a, d) VALUES %s", t2, strings.Join(vals, ", ")))

		queries := []string{
			fmt.Sprintf("SELECT * FROM %s WHERE a < %d", t1, rng.Intn(60)),
			fmt.Sprintf("SELECT c, COUNT(*), SUM(b), MIN(a) FROM %s WHERE a >= %d GROUP BY c", t1, rng.Intn(40)),
			fmt.Sprintf("SELECT id, a + 1 FROM %s WHERE b > %.2f ORDER BY id", t1, rng.Float64()*80),
			fmt.Sprintf("SELECT DISTINCT c FROM %s WHERE a > %d", t1, rng.Intn(40)),
			fmt.Sprintf("SELECT l.id, r.d FROM %s l JOIN %s r ON l.a = r.a WHERE r.k < %d", t1, t2, rng.Intn(80)),
			fmt.Sprintf("SELECT id FROM %s ORDER BY b LIMIT %d", t1, 1+rng.Intn(20)),
			fmt.Sprintf("SELECT COUNT(*), AVG(b) FROM %s", t1),
			fmt.Sprintf("SELECT a, COUNT(*) FROM %s GROUP BY a HAVING COUNT(*) > %d", t1, rng.Intn(3)),
		}
		for _, q := range queries {
			rowRes, batchRes := runBothModes(t, s, q)
			assertSameRows(t, q, rowRes, batchRes)
		}
		mustExec(t, s, "DROP TABLE "+t1)
		mustExec(t, s, "DROP TABLE "+t2)
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

var (
	actualsRe = regexp.MustCompile(`actual rows=(\d+) time=\S+ nexts=(\d+)`)
	tuplesRe  = regexp.MustCompile(`tuples=(\d+)`)
)

// analyzeCounts strips an EXPLAIN ANALYZE result down to its exact
// per-operator (rows, nexts) pairs plus the statement tuple count —
// everything that must not depend on the execution mode.
func analyzeCounts(t *testing.T, res *Result) string {
	t.Helper()
	var b strings.Builder
	for _, r := range res.Rows {
		line := r[0].S
		if m := actualsRe.FindStringSubmatch(line); m != nil {
			fmt.Fprintf(&b, "rows=%s nexts=%s\n", m[1], m[2])
		}
		if m := tuplesRe.FindStringSubmatch(line); m != nil {
			fmt.Fprintf(&b, "tuples=%s\n", m[1])
		}
	}
	if b.Len() == 0 {
		t.Fatalf("no actuals found in EXPLAIN ANALYZE output")
	}
	return b.String()
}

// TestExplainAnalyzeCountsMatchBatch pins the tracing exactness
// invariant: per-operator actual rows and Next calls, and the
// monitor's actual-cost tuple counter, are identical in both modes.
func TestExplainAnalyzeCountsMatchBatch(t *testing.T) {
	db := testDB(t)
	s := db.NewSession()
	defer s.Close()
	setupPeople(t, s)

	queries := []string{
		"SELECT name FROM people WHERE city = 'berlin'",
		"SELECT city, COUNT(*), SUM(age) FROM people GROUP BY city",
		"SELECT city, AVG(age) FROM people WHERE age < 40 GROUP BY city HAVING COUNT(*) > 10",
		"SELECT p.name, q.city FROM people p JOIN people q ON p.id = q.id WHERE p.age < 30",
		"SELECT name FROM people ORDER BY age LIMIT 10",
		"SELECT DISTINCT city FROM people WHERE age > 25",
		"SELECT COUNT(*) FROM people",
	}
	for _, q := range queries {
		rowRes, batchRes := runBothModes(t, s, "EXPLAIN ANALYZE "+q)
		rowC, batchC := analyzeCounts(t, rowRes), analyzeCounts(t, batchRes)
		if rowC != batchC {
			t.Errorf("%s:\nrow-path actuals:\n%sbatch-path actuals:\n%s", q, rowC, batchC)
		}
	}

	// The traces also landed in the monitor ring: the last two must
	// agree span by span on rows and calls.
	traces := db.Monitor().SnapshotTraces()
	if len(traces) < 2 {
		t.Fatalf("monitor holds %d traces", len(traces))
	}
	a, b := traces[len(traces)-2], traces[len(traces)-1]
	if len(a.Spans) != len(b.Spans) {
		t.Fatalf("span count differs: %d vs %d", len(a.Spans), len(b.Spans))
	}
	for i := range a.Spans {
		if a.Spans[i].Rows != b.Spans[i].Rows || a.Spans[i].Calls != b.Spans[i].Calls {
			t.Errorf("span %d (%s): row path rows=%d calls=%d, batch path rows=%d calls=%d",
				i, a.Spans[i].Op, a.Spans[i].Rows, a.Spans[i].Calls, b.Spans[i].Rows, b.Spans[i].Calls)
		}
	}
}

// TestBatchRowEquivalenceUnderConcurrentWriters extends the
// equivalence property to concurrent-writer schedules: a session pins
// a snapshot while writers keep committing new versions, leave
// transactions in flight, and roll others back. The heap then holds
// versions of every visibility class — committed-before-snapshot,
// committed-after, in-flight, aborted, and self-deleted — and the row
// and batch scan paths must classify all of them identically: same
// rows from the same pinned snapshot, every time.
func TestBatchRowEquivalenceUnderConcurrentWriters(t *testing.T) {
	db := testDB(t)
	setup := db.NewSession()
	mustExec(t, setup, "CREATE TABLE eq (id INTEGER PRIMARY KEY, grp INTEGER, v INTEGER)")
	var vals []string
	for i := 0; i < 400; i++ {
		vals = append(vals, fmt.Sprintf("(%d, %d, %d)", i, i%7, i))
	}
	mustExec(t, setup, "INSERT INTO eq (id, grp, v) VALUES "+strings.Join(vals, ", "))
	setup.Close()

	// Two open transactions leave in-flight versions on disk for the
	// whole comparison; one of them rolls back at the end.
	pend1, pend2 := db.NewSession(), db.NewSession()
	defer pend1.Close()
	defer pend2.Close()
	for _, p := range []*Session{pend1, pend2} {
		if err := p.Begin(); err != nil {
			t.Fatal(err)
		}
	}
	mustExec(t, pend1, "UPDATE eq SET v = -1 WHERE id < 50")
	mustExec(t, pend2, "DELETE FROM eq WHERE id >= 350")

	r := db.NewSession()
	defer r.Close()
	if err := r.Begin(); err != nil {
		t.Fatal(err)
	}
	mustExec(t, r, "SELECT COUNT(*) FROM eq") // pin the snapshot

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // committed churn after the snapshot
		defer wg.Done()
		w := db.NewSession()
		defer w.Close()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			var err error
			switch i % 3 {
			case 0:
				_, err = w.Exec(fmt.Sprintf("UPDATE eq SET v = v + 100 WHERE id = %d", 100+i%200))
			case 1:
				_, err = w.Exec(fmt.Sprintf("INSERT INTO eq VALUES (%d, 0, 0)", 1000+i))
			default: // aborted churn: versions that must never surface
				if err = w.Begin(); err == nil {
					_, err = w.Exec(fmt.Sprintf("UPDATE eq SET v = -7 WHERE id = %d", 100+i%200))
					w.Rollback()
				}
			}
			if err != nil && !errors.Is(err, ErrWriteConflict) {
				t.Error(err)
				return
			}
		}
	}()

	queries := []string{
		"SELECT COUNT(*), SUM(v) FROM eq",
		"SELECT grp, COUNT(*), SUM(v) FROM eq GROUP BY grp",
		"SELECT id, v FROM eq WHERE v < 60 ORDER BY id",
		"SELECT id FROM eq WHERE id >= 340 ORDER BY id",
	}
	for round := 0; round < 15; round++ {
		if round == 7 {
			pend2.Rollback() // its deletes stay invisible either way
		}
		for _, q := range queries {
			rowRes, batchRes := runBothModes(t, r, q)
			assertSameRows(t, q, rowRes, batchRes)
		}
	}
	close(stop)
	wg.Wait()

	// The pinned snapshot saw the original table the whole time.
	res := mustExec(t, r, "SELECT COUNT(*) FROM eq")
	if res.Rows[0][0].I != 400 {
		t.Fatalf("pinned snapshot counted %v rows, want 400", res.Rows[0][0])
	}
	if err := pend1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := r.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestBatchConcurrentSessions hammers the batch pipeline from many
// sessions at once (run under -race in CI): per-session batch state —
// scan batches, decode arenas, expression scratch — must never be
// shared across executions.
func TestBatchConcurrentSessions(t *testing.T) {
	db := testDB(t)
	setup := db.NewSession()
	setupPeople(t, setup)
	setup.Close()

	const goroutines = 8
	const iters = 20
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s := db.NewSession()
			defer s.Close()
			for i := 0; i < iters; i++ {
				id := (g*iters + i) % peopleRows
				res, err := s.Exec(fmt.Sprintf("SELECT name FROM people WHERE id = %d", id))
				if err == nil && (len(res.Rows) != 1 || res.Rows[0][0].S != fmt.Sprintf("person%04d", id)) {
					err = fmt.Errorf("point select %d: got %v", id, res.Rows)
				}
				if err == nil {
					res, err = s.Exec("SELECT city, COUNT(*) FROM people WHERE age < 40 GROUP BY city")
					if err == nil && len(res.Rows) != 3 {
						err = fmt.Errorf("agg returned %d groups", len(res.Rows))
					}
				}
				if err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
