package engine

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/monitor"
)

// End-to-end tests of the phase-2 wait-state attribution: a real engine
// under a contended workload, with statements flagged through the same
// monitor API the daemon's Flagger uses.

// TestWaitAttributionCoverage is the acceptance criterion: a flagged
// statement's breakdown must attribute ≥ 90% of its measured wall time
// across the exec/lock/io/fsync/pinwait buckets in a contended
// workload.
func TestWaitAttributionCoverage(t *testing.T) {
	m := monitor.New(monitor.Config{})
	// A small pool forces page loads; durable autocommit forces fsync
	// waits; concurrent updates of one table force lock waits.
	db, err := Open(Config{Dir: t.TempDir(), PoolPages: 64, Monitor: m})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s := db.NewSession()
	mustExec(t, s, "CREATE TABLE accounts (id INTEGER PRIMARY KEY, bal INTEGER)")
	for base := 0; base < 2000; base += 200 {
		vals := ""
		for i := base; i < base+200; i++ {
			if vals != "" {
				vals += ", "
			}
			vals += fmt.Sprintf("(%d, %d)", i, i)
		}
		mustExec(t, s, "INSERT INTO accounts (id, bal) VALUES "+vals)
	}
	const q = "UPDATE accounts SET bal = bal + 1 WHERE id < 300"
	mustExec(t, s, q) // warm the plan cache before flagging
	s.Close()

	if !m.Flag(q, monitor.FlagReasonManual, true, 0) {
		t.Fatal("Flag refused")
	}
	const sessions, perSession = 4, 20
	var attempts atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < sessions; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess := db.NewSession()
			defer sess.Close()
			for i := 0; i < perSession; i++ {
				// Write conflicts are retried; every attempt — conflicted
				// or not — is one sampled execution.
				for {
					attempts.Add(1)
					_, err := sess.Exec(q)
					if err == nil {
						break
					}
					if errors.Is(err, ErrWriteConflict) {
						continue
					}
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()

	fs := m.SnapshotFlags()
	if len(fs) != 1 {
		t.Fatalf("flags = %+v", fs)
	}
	f := fs[0]
	if f.Samples != attempts.Load() {
		t.Fatalf("samples = %d, want %d attempted executions", f.Samples, attempts.Load())
	}
	if f.Waits.WallNs <= 0 {
		t.Fatal("no wall time attributed")
	}
	coverage := float64(f.Waits.Sum()) / float64(f.Waits.WallNs)
	t.Logf("breakdown: wall=%v exec=%v lock=%v io=%v fsync=%v pin=%v (coverage %.1f%%)",
		time.Duration(f.Waits.WallNs), time.Duration(f.Waits.ExecNs),
		time.Duration(f.Waits.LockNs), time.Duration(f.Waits.IONs),
		time.Duration(f.Waits.FsyncNs), time.Duration(f.Waits.PinWaitNs), coverage*100)
	if coverage < 0.90 {
		t.Fatalf("breakdown attributes only %.1f%% of wall time", coverage*100)
	}
	if coverage > 1.0 {
		t.Fatalf("breakdown exceeds wall: %.3f", coverage)
	}
	if f.Waits.LockNs <= 0 {
		t.Error("contended updates recorded no lock wait")
	}
	if f.Waits.FsyncNs <= 0 {
		t.Error("durable autocommits recorded no fsync wait")
	}

	// Engine-level parity: the statement ran alone under a never-expiring
	// flag, so the global totals must equal its breakdown exactly.
	wt := m.WaitTotals()
	if wt.ExecNs != f.Waits.ExecNs || wt.LockNs != f.Waits.LockNs ||
		wt.IONs != f.Waits.IONs || wt.FsyncNs != f.Waits.FsyncNs ||
		wt.PinWaitNs != f.Waits.PinWaitNs {
		t.Fatalf("WaitTotals %+v != flagged breakdown %+v", wt, f.Waits)
	}
}

// TestWaitAttributionSelects covers the read path: flagged SELECTs on a
// pool smaller than the table attribute page-load I/O, and the
// breakdown respects the wall bound.
func TestWaitAttributionSelects(t *testing.T) {
	m := monitor.New(monitor.Config{})
	db, err := Open(Config{Dir: t.TempDir(), PoolPages: 16, Monitor: m})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s := db.NewSession()
	defer s.Close()
	mustExec(t, s, "CREATE TABLE big (id INTEGER PRIMARY KEY, pad VARCHAR(256))")
	pad := ""
	for i := 0; i < 200; i++ {
		pad += "x"
	}
	for base := 0; base < 3000; base += 100 {
		vals := ""
		for i := base; i < base+100; i++ {
			if vals != "" {
				vals += ", "
			}
			vals += fmt.Sprintf("(%d, '%s')", i, pad)
		}
		mustExec(t, s, "INSERT INTO big (id, pad) VALUES "+vals)
	}
	const q = "SELECT COUNT(*) FROM big"
	mustExec(t, s, q)
	m.Flag(q, monitor.FlagReasonManual, true, 0)
	for i := 0; i < 10; i++ {
		mustExec(t, s, q)
	}
	f := m.SnapshotFlags()[0]
	if f.Samples != 10 {
		t.Fatalf("samples = %d", f.Samples)
	}
	if f.Waits.IONs <= 0 {
		t.Error("scan over a 16-page pool recorded no page-load I/O")
	}
	if f.Waits.Sum() > f.Waits.WallNs {
		t.Fatalf("breakdown %v exceeds wall %v", f.Waits.Sum(), f.Waits.WallNs)
	}
	if cov := float64(f.Waits.Sum()) / float64(f.Waits.WallNs); cov < 0.90 {
		t.Errorf("select coverage %.1f%% < 90%%", cov*100)
	}
}

// TestFlagChurnUnderConcurrentSessions is the integration half of the
// churn stress: flags come and go (including TTL expiry) while real
// sessions execute the statements being flagged. Run under -race in CI.
func TestFlagChurnUnderConcurrentSessions(t *testing.T) {
	m := monitor.New(monitor.Config{MaxFlagged: 4})
	db, err := Open(Config{Dir: t.TempDir(), PoolPages: 128, Monitor: m})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s := db.NewSession()
	mustExec(t, s, "CREATE TABLE kv (id INTEGER PRIMARY KEY, v INTEGER)")
	mustExec(t, s, "INSERT INTO kv (id, v) VALUES (1, 0), (2, 0), (3, 0)")
	s.Close()

	queries := []string{
		"SELECT v FROM kv WHERE id = 1",
		"SELECT v FROM kv WHERE id = 2",
		"UPDATE kv SET v = v + 1 WHERE id = 3",
		"SELECT COUNT(*) FROM kv",
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		seed := int64(g)
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			sess := db.NewSession()
			defer sess.Close()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := sess.Exec(queries[r.Intn(len(queries))]); err != nil && !errors.Is(err, ErrWriteConflict) {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() { // the churner: flag, unflag, expire
		defer wg.Done()
		r := rand.New(rand.NewSource(99))
		for {
			select {
			case <-stop:
				return
			default:
			}
			q := queries[r.Intn(len(queries))]
			switch r.Intn(3) {
			case 0:
				m.Flag(q, monitor.FlagReasonTrend, false, time.Millisecond)
			case 1:
				m.Unflag(q)
			case 2:
				m.ExpireFlags(time.Now())
			}
		}
	}()
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Quiesced invariants: every surviving breakdown respects its wall
	// bound and the flag count matches the snapshot.
	for _, f := range m.SnapshotFlags() {
		if f.Waits.Sum() > f.Waits.WallNs {
			t.Fatalf("breakdown exceeds wall after churn: %+v", f)
		}
	}
	if n, l := m.FlagCount(), len(m.SnapshotFlags()); n != int64(l) {
		t.Fatalf("FlagCount %d != snapshot %d", n, l)
	}
}
