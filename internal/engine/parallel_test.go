package engine

import (
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/monitor"
	"repro/internal/sqltypes"
)

// Morsel-driven parallelism must be observationally equivalent to
// serial execution: same groups in the same order, same integer
// aggregates bit for bit, float aggregates equal up to summation
// order, same EXPLAIN ANALYZE actuals, and no leaked page pins — even
// under concurrent writers and vacuum, and even when a worker fails
// mid-scan.

// bigRows sizes the parallel fixture: large enough that the heap
// spans several morsels (64 pages each) so the parallel path actually
// fans out. The tests assert the page count rather than trust the
// arithmetic.
const bigRows = 20000

// setupBig builds the morsel fixture and returns a session on it.
func setupBig(t *testing.T, db *DB) *Session {
	t.Helper()
	s := db.NewSession()
	t.Cleanup(s.Close)
	mustExec(t, s, `CREATE TABLE big (id INTEGER PRIMARY KEY, grp INTEGER, v INTEGER, f FLOAT)`)
	for base := 0; base < bigRows; base += 200 {
		var vals []string
		for i := base; i < base+200 && i < bigRows; i++ {
			vals = append(vals, fmt.Sprintf("(%d, %d, %d, %d.25)", i, i%13, i%97, i%31))
		}
		mustExec(t, s, "INSERT INTO big (id, grp, v, f) VALUES "+strings.Join(vals, ", "))
	}
	pages := db.handle("big").heap.Pages()
	if pages < 3*64 {
		t.Fatalf("fixture heap has %d pages, want >= %d so several morsels engage", pages, 3*64)
	}
	return s
}

func bigDB(t *testing.T) *DB {
	t.Helper()
	db, err := Open(Config{Dir: t.TempDir(), PoolPages: 1024, Monitor: monitor.New(monitor.Config{})})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

// runBothParallel executes sql at 8 workers and again serially on the
// same session, so both runs share one cached plan.
func runBothParallel(t *testing.T, s *Session, sql string) (par, ser *Result) {
	t.Helper()
	s.SetParallel(8)
	par = mustExec(t, s, sql)
	s.SetParallel(1)
	ser = mustExec(t, s, sql)
	return par, ser
}

// TestParallelSerialEquivalence is the correctness contract of the
// morsel path: grouped aggregates computed by 8 workers must match the
// serial plan — group order and integer aggregates exactly, float
// sums and averages to within summation-reordering error.
func TestParallelSerialEquivalence(t *testing.T) {
	db := bigDB(t)
	s := setupBig(t, db)

	queries := []string{
		"SELECT grp, COUNT(*), SUM(v), MIN(v), MAX(v) FROM big GROUP BY grp",
		"SELECT grp, COUNT(*) FROM big WHERE v < 40 GROUP BY grp",
		"SELECT COUNT(*), SUM(v) FROM big",
		"SELECT grp, SUM(f), AVG(f), COUNT(f) FROM big WHERE id >= 100 GROUP BY grp",
		"SELECT grp, MIN(f), MAX(f) FROM big GROUP BY grp HAVING COUNT(*) > 10",
		"SELECT COUNT(*) FROM big WHERE v = 96",
	}
	for _, q := range queries {
		par, ser := runBothParallel(t, s, q)
		if len(par.Rows) != len(ser.Rows) {
			t.Fatalf("%s:\nparallel %d rows, serial %d rows", q, len(par.Rows), len(ser.Rows))
		}
		for i := range ser.Rows {
			if len(par.Rows[i]) != len(ser.Rows[i]) {
				t.Fatalf("%s: row %d width differs", q, i)
			}
			for j, sv := range ser.Rows[i] {
				pv := par.Rows[i][j]
				if pv.T != sv.T {
					t.Fatalf("%s: row %d col %d: parallel type %v, serial type %v", q, i, j, pv.T, sv.T)
				}
				// Float SUM/AVG accumulate in worker-scheduling order, so
				// parallel and serial may differ in the last few ULPs;
				// everything else must be bit-exact.
				if sv.T == sqltypes.Float {
					if !floatClose(pv.F, sv.F) {
						t.Errorf("%s: row %d col %d: parallel %v, serial %v", q, i, j, pv.F, sv.F)
					}
					continue
				}
				if pv != sv {
					t.Errorf("%s: row %d col %d: parallel %+v, serial %+v", q, i, j, pv, sv)
				}
			}
		}
	}
	if db.Stats().ParallelQueries == 0 {
		t.Fatal("no query ran the parallel path; fixture or fan-out guard is wrong")
	}
	if n := db.pool.PinnedFrames(); n != 0 {
		t.Fatalf("%d frames still pinned after parallel queries", n)
	}
}

func floatClose(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*scale
}

// TestParallelExplainAnalyzeActuals pins trace accounting under
// parallelism: per-operator actual rows, Next calls, and the monitor
// tuple count are aggregated across workers into exactly the numbers
// the serial plan reports. (Times may differ; counts may not.)
func TestParallelExplainAnalyzeActuals(t *testing.T) {
	db := bigDB(t)
	s := setupBig(t, db)

	queries := []string{
		"SELECT grp, COUNT(*), SUM(v) FROM big GROUP BY grp",
		"SELECT grp, COUNT(*) FROM big WHERE v < 25 GROUP BY grp",
		"SELECT COUNT(*) FROM big",
	}
	for _, q := range queries {
		par, ser := runBothParallel(t, s, "EXPLAIN ANALYZE "+q)
		parC, serC := analyzeCounts(t, par), analyzeCounts(t, ser)
		if parC != serC {
			t.Errorf("%s:\nparallel actuals:\n%sserial actuals:\n%s", q, parC, serC)
		}
	}
}

// TestMorselStormUnderWriters runs 8-worker aggregations against
// group-atomic updaters and a vacuum loop (under -race in CI). Every
// UPDATE bumps one whole group in a single statement, so snapshot
// isolation guarantees each scan sees a group either entirely bumped
// or entirely not: MIN(v) == MAX(v) within a group at all times, and
// group counts never move. A torn morsel boundary or a worker reading
// across two snapshots breaks the invariant immediately.
func TestMorselStormUnderWriters(t *testing.T) {
	db := bigDB(t)
	s := db.NewSession()
	defer s.Close()
	mustExec(t, s, `CREATE TABLE storm (id INTEGER PRIMARY KEY, grp INTEGER, v INTEGER)`)
	const stormRows = 16000
	const groups = 4
	for base := 0; base < stormRows; base += 200 {
		var vals []string
		for i := base; i < base+200 && i < stormRows; i++ {
			vals = append(vals, fmt.Sprintf("(%d, %d, 0)", i, i%groups))
		}
		mustExec(t, s, "INSERT INTO storm (id, grp, v) VALUES "+strings.Join(vals, ", "))
	}
	if pages := db.handle("storm").heap.Pages(); pages < 2*64 {
		t.Fatalf("storm heap has %d pages, want >= %d", pages, 2*64)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, groups+2)

	for g := 0; g < groups; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			w := db.NewSession()
			defer w.Close()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := w.Exec(fmt.Sprintf("UPDATE storm SET v = v + 1 WHERE grp = %d", g)); err != nil {
					errs <- fmt.Errorf("writer %d: %w", g, err)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := db.Vacuum(); err != nil {
				errs <- fmt.Errorf("vacuum: %w", err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	r := db.NewSession()
	defer r.Close()
	r.SetParallel(8)
	perGroup := int64(stormRows / groups)
	for round := 0; round < 40; round++ {
		res, err := r.Exec("SELECT grp, COUNT(*), MIN(v), MAX(v) FROM storm GROUP BY grp")
		if err != nil {
			t.Error(err)
			break
		}
		if len(res.Rows) != groups {
			t.Errorf("round %d: %d groups, want %d", round, len(res.Rows), groups)
			break
		}
		for _, row := range res.Rows {
			g, n, lo, hi := row[0].I, row[1].I, row[2].I, row[3].I
			if n != perGroup {
				t.Errorf("round %d: group %d count %d, want %d", round, g, n, perGroup)
			}
			if lo != hi {
				t.Errorf("round %d: group %d torn read: MIN(v)=%d MAX(v)=%d", round, g, lo, hi)
			}
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if n := db.pool.PinnedFrames(); n != 0 {
		t.Fatalf("%d frames still pinned after storm", n)
	}
}

// TestParallelErrorReleasesPins forces a mid-scan evaluation error in
// one worker (division by zero on a single row deep in the heap) and
// checks the error surfaces through the merge and that every worker
// unwound its pins.
func TestParallelErrorReleasesPins(t *testing.T) {
	db := bigDB(t)
	s := setupBig(t, db)
	s.SetParallel(8)

	_, err := s.Exec(fmt.Sprintf("SELECT SUM(100 / (id - %d)) FROM big", bigRows-50))
	if err == nil {
		t.Fatal("expected division-by-zero error from parallel aggregation")
	}
	if !strings.Contains(err.Error(), "division by zero") {
		t.Fatalf("unexpected error: %v", err)
	}
	if n := db.pool.PinnedFrames(); n != 0 {
		t.Fatalf("%d frames still pinned after failed parallel query", n)
	}

	// The session stays usable after a worker failure.
	res := mustExec(t, s, "SELECT COUNT(*) FROM big")
	if res.Rows[0][0].I != bigRows {
		t.Fatalf("count after failure = %v, want %d", res.Rows[0][0], bigRows)
	}
}

// TestMorselSpeedup asserts the headline acceptance criterion: on a
// machine with enough cores, 8 workers beat serial by >= 2x on the
// scan-heavy aggregate. On fewer than 4 cores the workers time-slice
// one CPU and no speedup is possible, so the test logs and skips.
func TestMorselSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("GOMAXPROCS=%d: morsel speedup needs >= 4 cores; skipping (measured, not assumed, on multi-core CI)", runtime.GOMAXPROCS(0))
	}
	db := bigDB(t)
	s := setupBig(t, db)
	const q = "SELECT grp, COUNT(*), SUM(v), SUM(f) FROM big WHERE v < 90 GROUP BY grp"

	best := func(parallel, reps int) time.Duration {
		s.SetParallel(parallel)
		mustExec(t, s, q) // warm plan cache and buffer pool
		b := time.Duration(math.MaxInt64)
		for i := 0; i < reps; i++ {
			start := time.Now()
			mustExec(t, s, q)
			if d := time.Since(start); d < b {
				b = d
			}
		}
		return b
	}
	serial := best(1, 5)
	par := best(8, 5)
	t.Logf("serial best %v, 8-worker best %v (%.2fx)", serial, par, float64(serial)/float64(par))
	if par*2 > serial {
		t.Errorf("8-worker run %v not >= 2x faster than serial %v", par, serial)
	}
}

// TestParallelPoolPressure shrinks the buffer pool well below the
// table size so all 8 workers continuously evict each other's pages;
// the query must still complete correctly and release every pin.
func TestParallelPoolPressure(t *testing.T) {
	db, err := Open(Config{Dir: t.TempDir(), PoolPages: 96, Monitor: monitor.New(monitor.Config{})})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s := setupBig(t, db)
	s.SetParallel(8)

	res := mustExec(t, s, "SELECT COUNT(*), SUM(v) FROM big")
	if res.Rows[0][0].I != bigRows {
		t.Fatalf("count = %v, want %d", res.Rows[0][0], bigRows)
	}
	if n := db.pool.PinnedFrames(); n != 0 {
		t.Fatalf("%d frames still pinned under pool pressure", n)
	}
}

// TestSetParallelStatement covers the SQL knob end to end: SET
// PARALLEL changes the session fan-out, out-of-range values clamp,
// and unknown knobs error.
func TestSetParallelStatement(t *testing.T) {
	db := testDB(t)
	s := db.NewSession()
	defer s.Close()

	mustExec(t, s, "SET PARALLEL 8")
	if got := s.Parallel(); got != 8 {
		t.Fatalf("Parallel() = %d after SET PARALLEL 8", got)
	}
	mustExec(t, s, "SET parallel = 1")
	if got := s.Parallel(); got != 1 {
		t.Fatalf("Parallel() = %d after SET parallel = 1", got)
	}
	mustExec(t, s, "SET PARALLEL 0")
	if got := s.Parallel(); got != 1 {
		t.Fatalf("Parallel() = %d after SET PARALLEL 0, want clamp to 1", got)
	}
	mustExec(t, s, "SET PARALLEL 1000")
	if got := s.Parallel(); got != maxSessionParallel {
		t.Fatalf("Parallel() = %d after SET PARALLEL 1000, want clamp to %d", got, maxSessionParallel)
	}
	if _, err := s.Exec("SET NO_SUCH_KNOB 3"); err == nil {
		t.Fatal("SET NO_SUCH_KNOB should error")
	}
}

// TestParallelTelemetry checks the counters flow from executor Ctx
// through the session into DB stats.
func TestParallelTelemetry(t *testing.T) {
	db := bigDB(t)
	s := setupBig(t, db)

	before := db.Stats()
	s.SetParallel(8)
	mustExec(t, s, "SELECT grp, COUNT(*) FROM big GROUP BY grp")
	after := db.Stats()

	if after.ParallelQueries != before.ParallelQueries+1 {
		t.Errorf("ParallelQueries %d -> %d, want +1", before.ParallelQueries, after.ParallelQueries)
	}
	wantMorsels := int64((db.handle("big").heap.Pages() + 63) / 64)
	if got := after.MorselsDispatched - before.MorselsDispatched; got != wantMorsels {
		t.Errorf("MorselsDispatched += %d, want %d", got, wantMorsels)
	}
	if after.ParallelWorkerNanos <= before.ParallelWorkerNanos {
		t.Errorf("ParallelWorkerNanos did not advance: %d -> %d", before.ParallelWorkerNanos, after.ParallelWorkerNanos)
	}

	// Serial runs must not touch the parallel counters.
	s.SetParallel(1)
	mustExec(t, s, "SELECT grp, COUNT(*) FROM big GROUP BY grp")
	final := db.Stats()
	if final.ParallelQueries != after.ParallelQueries {
		t.Errorf("serial run bumped ParallelQueries: %d -> %d", after.ParallelQueries, final.ParallelQueries)
	}
}

// TestSmallTableStaysSerial pins the fan-out guard: a table under two
// morsels' worth of pages never pays parallel overhead, which is what
// keeps 1-worker and small-table performance identical to the
// pre-morsel engine.
func TestSmallTableStaysSerial(t *testing.T) {
	db := testDB(t)
	s := db.NewSession()
	defer s.Close()
	setupPeople(t, s)
	if pages := db.handle("people").heap.Pages(); pages >= 2*64 {
		t.Skipf("people fixture grew to %d pages; small-table guard untestable", pages)
	}

	s.SetParallel(8)
	mustExec(t, s, "SELECT city, COUNT(*) FROM people GROUP BY city")
	if n := db.Stats().ParallelQueries; n != 0 {
		t.Fatalf("small-table aggregate took the parallel path (%d parallel queries)", n)
	}
}
