package engine

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// Snapshot-isolation semantics suite. Every read-visibility scenario
// runs twice — once through the Volcano row executor and once through
// the vectorized batch executor — because visibility is enforced
// independently in both scan paths (per-row check vs per-batch
// selection vector).

// inBothExecModes runs the scenario with the *reading* session in row
// mode and again in batch mode.
func inBothExecModes(t *testing.T, fn func(t *testing.T, batch bool)) {
	t.Run("row", func(t *testing.T) { fn(t, false) })
	t.Run("batch", func(t *testing.T) { fn(t, true) })
}

func TestNestedBeginErrors(t *testing.T) {
	inBothExecModes(t, func(t *testing.T, batch bool) {
		db := testDB(t)
		s := db.NewSession()
		defer s.Close()
		s.SetBatchExec(batch)
		mustExec(t, s, "CREATE TABLE nb (id INTEGER PRIMARY KEY, v INTEGER)")
		mustExec(t, s, "INSERT INTO nb VALUES (1, 10)")

		if err := s.Begin(); err != nil {
			t.Fatal(err)
		}
		mustExec(t, s, "UPDATE nb SET v = 11 WHERE id = 1")
		if err := s.Begin(); err == nil {
			t.Fatal("nested Begin succeeded")
		} else if !strings.Contains(err.Error(), "BEGIN inside an open transaction") {
			t.Fatalf("nested Begin error = %v", err)
		}
		// The rejected BEGIN must not have damaged the open transaction.
		mustExec(t, s, "UPDATE nb SET v = 12 WHERE id = 1")
		if err := s.Commit(); err != nil {
			t.Fatal(err)
		}
		res := mustExec(t, s, "SELECT v FROM nb WHERE id = 1")
		if len(res.Rows) != 1 || res.Rows[0][0].I != 12 {
			t.Fatalf("after commit: %v, want v=12", res.Rows)
		}
	})
}

func TestNoDirtyReads(t *testing.T) {
	inBothExecModes(t, func(t *testing.T, batch bool) {
		db := testDB(t)
		w := db.NewSession()
		defer w.Close()
		mustExec(t, w, "CREATE TABLE dr (id INTEGER PRIMARY KEY, v INTEGER)")
		mustExec(t, w, "INSERT INTO dr VALUES (1, 100)")

		if err := w.Begin(); err != nil {
			t.Fatal(err)
		}
		mustExec(t, w, "UPDATE dr SET v = 999 WHERE id = 1")
		mustExec(t, w, "INSERT INTO dr VALUES (2, 999)")

		r := db.NewSession()
		defer r.Close()
		r.SetBatchExec(batch)
		res := mustExec(t, r, "SELECT id, v FROM dr ORDER BY id")
		if len(res.Rows) != 1 || res.Rows[0][1].I != 100 {
			t.Fatalf("reader saw uncommitted writes: %v", res.Rows)
		}
		if err := w.Commit(); err != nil {
			t.Fatal(err)
		}
		res = mustExec(t, r, "SELECT id, v FROM dr ORDER BY id")
		if len(res.Rows) != 2 || res.Rows[0][1].I != 999 {
			t.Fatalf("after commit reader saw %v", res.Rows)
		}
	})
}

func TestRepeatableReads(t *testing.T) {
	inBothExecModes(t, func(t *testing.T, batch bool) {
		db := testDB(t)
		setup := db.NewSession()
		mustExec(t, setup, "CREATE TABLE rr (id INTEGER PRIMARY KEY, v INTEGER)")
		mustExec(t, setup, "INSERT INTO rr VALUES (1, 1), (2, 2)")
		setup.Close()

		r := db.NewSession()
		defer r.Close()
		r.SetBatchExec(batch)
		if err := r.Begin(); err != nil {
			t.Fatal(err)
		}
		// First statement captures the snapshot.
		first := mustExec(t, r, "SELECT SUM(v) FROM rr")

		// A concurrent transaction commits an update, a delete and an
		// insert. None of it may leak into the open snapshot.
		w := db.NewSession()
		mustExec(t, w, "UPDATE rr SET v = 100 WHERE id = 1")
		mustExec(t, w, "DELETE FROM rr WHERE id = 2")
		mustExec(t, w, "INSERT INTO rr VALUES (3, 1000)")
		w.Close()

		again := mustExec(t, r, "SELECT SUM(v) FROM rr")
		if first.Rows[0][0].I != 3 || again.Rows[0][0].I != 3 {
			t.Fatalf("repeatable read violated: first=%v again=%v, want 3",
				first.Rows[0][0], again.Rows[0][0])
		}
		if err := r.Commit(); err != nil {
			t.Fatal(err)
		}
		// A fresh snapshot sees the committed state: v=100 + v=1000.
		fresh := mustExec(t, r, "SELECT SUM(v) FROM rr")
		if fresh.Rows[0][0].I != 1100 {
			t.Fatalf("post-commit read = %v, want 1100", fresh.Rows[0][0])
		}
	})
}

// TestFirstUpdaterWinsWithoutBlocking: a transaction whose snapshot
// predates a *committed* concurrent update conflicts immediately on its
// own write — no lock wait is involved, the version recheck alone
// detects the superseded row. (The blocking variant, where the first
// updater is still in flight, is TestTransactionHoldsLocks.)
func TestFirstUpdaterWinsWithoutBlocking(t *testing.T) {
	db := testDB(t)
	setup := db.NewSession()
	mustExec(t, setup, "CREATE TABLE fu (id INTEGER PRIMARY KEY, v INTEGER)")
	mustExec(t, setup, "INSERT INTO fu VALUES (1, 0)")
	setup.Close()

	s1 := db.NewSession()
	defer s1.Close()
	if err := s1.Begin(); err != nil {
		t.Fatal(err)
	}
	mustExec(t, s1, "SELECT v FROM fu WHERE id = 1") // capture snapshot

	// s2 updates and commits while s1's snapshot is open.
	s2 := db.NewSession()
	mustExec(t, s2, "UPDATE fu SET v = 1 WHERE id = 1")
	s2.Close()

	_, err := s1.Exec("UPDATE fu SET v = 2 WHERE id = 1")
	if !errors.Is(err, ErrWriteConflict) {
		t.Fatalf("stale update: got %v, want ErrWriteConflict", err)
	}
	s1.Rollback()

	// The loser's write is invisible; the winner's survives.
	res := mustExec(t, s1, "SELECT v FROM fu WHERE id = 1")
	if res.Rows[0][0].I != 1 {
		t.Fatalf("v = %v after conflict, want the winner's 1", res.Rows[0][0])
	}
	if db.MvccStats().WriteConflicts == 0 {
		t.Error("WriteConflicts counter not bumped")
	}
}

// TestWriteSkewAnomaly documents the anomaly snapshot isolation
// permits: two transactions each read an invariant's inputs, then
// write to *disjoint* rows — no write-write conflict fires, both
// commit, and the combined result violates the constraint each saw
// holding. This is expected SI behavior (not serializability); the
// test pins it down so a semantics change is a conscious decision.
func TestWriteSkewAnomaly(t *testing.T) {
	db := testDB(t)
	setup := db.NewSession()
	mustExec(t, setup, "CREATE TABLE oncall (id INTEGER PRIMARY KEY, on_duty INTEGER)")
	mustExec(t, setup, "INSERT INTO oncall VALUES (1, 1), (2, 1)")
	setup.Close()

	s1 := db.NewSession()
	s2 := db.NewSession()
	defer s1.Close()
	defer s2.Close()

	// Both check the invariant "at least one doctor stays on duty"...
	for _, s := range []*Session{s1, s2} {
		if err := s.Begin(); err != nil {
			t.Fatal(err)
		}
		res := mustExec(t, s, "SELECT SUM(on_duty) FROM oncall")
		if res.Rows[0][0].I < 2 {
			t.Fatalf("setup: %v on duty", res.Rows[0][0])
		}
	}
	// ...then each takes a different doctor off duty. Disjoint write
	// sets: neither conflicts, both commit.
	mustExec(t, s1, "UPDATE oncall SET on_duty = 0 WHERE id = 1")
	mustExec(t, s2, "UPDATE oncall SET on_duty = 0 WHERE id = 2")
	if err := s1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := s2.Commit(); err != nil {
		t.Fatal(err)
	}
	res := mustExec(t, s1, "SELECT SUM(on_duty) FROM oncall")
	if res.Rows[0][0].I != 0 {
		t.Fatalf("SUM(on_duty) = %v; SI write skew should have allowed 0", res.Rows[0][0])
	}
}

func TestRollbackLeavesNoTrace(t *testing.T) {
	inBothExecModes(t, func(t *testing.T, batch bool) {
		db := testDB(t)
		s := db.NewSession()
		defer s.Close()
		s.SetBatchExec(batch)
		mustExec(t, s, "CREATE TABLE rb (id INTEGER PRIMARY KEY, v INTEGER)")
		mustExec(t, s, "INSERT INTO rb VALUES (1, 1)")

		if err := s.Begin(); err != nil {
			t.Fatal(err)
		}
		mustExec(t, s, "UPDATE rb SET v = 2 WHERE id = 1")
		mustExec(t, s, "INSERT INTO rb VALUES (2, 2)")
		mustExec(t, s, "DELETE FROM rb WHERE id = 1")
		s.Rollback()

		res := mustExec(t, s, "SELECT id, v FROM rb ORDER BY id")
		if len(res.Rows) != 1 || res.Rows[0][0].I != 1 || res.Rows[0][1].I != 1 {
			t.Fatalf("after rollback: %v, want the original (1,1)", res.Rows)
		}
		if db.MvccStats().TxnAborts == 0 {
			t.Error("TxnAborts counter not bumped")
		}
	})
}

// TestMvccStorm is the -race stress: concurrent transfer transactions,
// snapshot readers asserting the conserved invariant, and a vacuum
// loop reclaiming behind them, all against one table. Run under -race
// in CI.
func TestMvccStorm(t *testing.T) {
	db := testDB(t)
	setup := db.NewSession()
	mustExec(t, setup, "CREATE TABLE acct (id INTEGER PRIMARY KEY, bal INTEGER)")
	const accounts, initial = 8, 100
	for i := 0; i < accounts; i++ {
		mustExec(t, setup, fmt.Sprintf("INSERT INTO acct VALUES (%d, %d)", i, initial))
	}
	setup.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Writers: move 1 unit between two accounts per transaction,
	// retrying conflicts. The invariant: SUM(bal) is conserved.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := db.NewSession()
			defer s.Close()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				from, to := (w+i)%accounts, (w+i+1+w%3)%accounts
				if from == to {
					continue
				}
				if err := s.Begin(); err != nil {
					t.Error(err)
					return
				}
				_, err := s.Exec(fmt.Sprintf("UPDATE acct SET bal = bal - 1 WHERE id = %d", from))
				if err == nil {
					_, err = s.Exec(fmt.Sprintf("UPDATE acct SET bal = bal + 1 WHERE id = %d", to))
				}
				if err != nil {
					s.Rollback()
					if !errors.Is(err, ErrWriteConflict) {
						t.Error(err)
						return
					}
					continue
				}
				if err := s.Commit(); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	// Readers: every snapshot must see the conserved total, in both
	// executor modes.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			s := db.NewSession()
			defer s.Close()
			s.SetBatchExec(r%2 == 0)
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := s.Exec("SELECT SUM(bal) FROM acct")
				if err != nil {
					t.Error(err)
					return
				}
				if got := res.Rows[0][0].I; got != accounts*initial {
					t.Errorf("reader saw SUM(bal) = %d, want %d (torn snapshot)", got, accounts*initial)
					return
				}
			}
		}(r)
	}
	// Vacuum races the whole thing.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := db.Vacuum(); err != nil {
				t.Errorf("vacuum: %v", err)
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	time.Sleep(600 * time.Millisecond)
	close(stop)
	wg.Wait()

	s := db.NewSession()
	defer s.Close()
	res := mustExec(t, s, "SELECT SUM(bal) FROM acct")
	if res.Rows[0][0].I != accounts*initial {
		t.Fatalf("final SUM(bal) = %v, want %d", res.Rows[0][0], accounts*initial)
	}
	if st := db.LockStats(); st.Held != 0 || st.Waiting != 0 {
		t.Fatalf("locks leaked: %+v", st)
	}
	ms := db.MvccStats()
	if ms.InflightTxns != 0 || ms.ActiveSnapshots != 0 {
		t.Fatalf("quiesced but inflight=%d snapshots=%d", ms.InflightTxns, ms.ActiveSnapshots)
	}
}
