package engine

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/catalog"
	"repro/internal/executor"
	"repro/internal/sqltypes"
	"repro/internal/storage"
)

// MaxTextBytes bounds text column values so that every row fits a
// B-Tree entry after encoding.
const MaxTextBytes = 512

// coerceRow validates and coerces a row against the table schema:
// ints widen to floats, anything else must match or be NULL.
func coerceRow(schema sqltypes.Schema, row sqltypes.Row) (sqltypes.Row, error) {
	if len(row) != schema.Len() {
		return nil, fmt.Errorf("engine: row has %d values, table has %d columns", len(row), schema.Len())
	}
	out := make(sqltypes.Row, len(row))
	for i, v := range row {
		col := schema.Columns[i]
		switch {
		case v.IsNull():
			out[i] = v
		case v.T == col.Type:
			if v.T == sqltypes.Text && len(v.S) > MaxTextBytes {
				return nil, fmt.Errorf("engine: value for %s exceeds %d bytes", col.Name, MaxTextBytes)
			}
			out[i] = v
		case col.Type == sqltypes.Float && v.T == sqltypes.Int:
			out[i] = sqltypes.NewFloat(float64(v.I))
		case col.Type == sqltypes.Int && v.T == sqltypes.Float && v.F == float64(int64(v.F)):
			out[i] = sqltypes.NewInt(int64(v.F))
		default:
			return nil, fmt.Errorf("engine: type mismatch for column %s: %s value into %s column",
				col.Name, v.T, col.Type)
		}
	}
	return out, nil
}

// keyFor builds the order-preserving key of the given columns.
func keyFor(schema sqltypes.Schema, row sqltypes.Row, cols []string) ([]byte, error) {
	var key []byte
	for _, c := range cols {
		idx := schema.ColIndex(c)
		if idx < 0 {
			return nil, fmt.Errorf("engine: key column %q not in schema", c)
		}
		key = sqltypes.EncodeKey(key, row[idx])
	}
	return key, nil
}

// tidSuffix appends the TID to an index key so duplicate key values
// stay unique. The TID is encoded with EncodeKey so that its first
// byte can never be 0xFF (range upper bounds rely on that).
func tidSuffix(key []byte, tid storage.TID) []byte {
	return sqltypes.EncodeKey(key, sqltypes.NewInt(int64(tid)))
}

// tidSuffixLen is the encoded size of the TID suffix tidSuffix appends:
// EncodeKey of an Int is always tag+float64+tag+int64 = 18 bytes.
const tidSuffixLen = 18

func tidBytes(tid storage.TID) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(tid))
	return b[:]
}

func tidFromBytes(b []byte) storage.TID {
	return storage.TID(binary.BigEndian.Uint64(b))
}

// storageKey returns the columns the BTREE primary structure clusters
// on: the explicit storage key if set, else the primary key.
func storageKey(meta *catalog.Table) []string {
	if len(meta.StorageKey) > 0 {
		return meta.StorageKey
	}
	return meta.PrimaryKey
}

// attachWalTxn points every file of the table at the WAL transaction
// that is about to mutate it, so Page.WillModify captures before-images
// for t. Returns the detach func; callers defer it for the statement's
// duration. The caller holds the table's X lock, which is what makes
// the plain curTxn field race-free. A nil t attaches nothing (unlogged
// paths: DDL rebuilds behind the exclusive gate).
func (db *DB) attachWalTxn(h *tableHandle, t *storage.WalTxn) func() {
	if t == nil {
		return func() {}
	}
	files := make([]*storage.File, 0, 2+len(h.indexes))
	files = append(files, h.heap.File())
	if h.primary != nil {
		files = append(files, h.primary.File())
	}
	for _, ix := range h.indexes {
		files = append(files, ix.File())
	}
	for _, f := range files {
		f.SetWALTxn(t)
		f.SetProf(t.Prof())
	}
	return func() {
		for _, f := range files {
			f.SetWALTxn(nil)
			f.SetProf(nil)
		}
	}
}

// insertRow inserts a coerced row into the table, maintaining the
// primary structure and all secondary indexes. Uniqueness is enforced
// by unique secondary indexes (the auto-created pk_<table> index), not
// by the storage structure, which may cluster on non-unique keys. The
// caller must hold the table's X lock.
func (db *DB) insertRow(h *tableHandle, row sqltypes.Row) (storage.TID, error) {
	var pkey []byte
	if h.primary != nil {
		var err error
		pkey, err = keyFor(h.meta.Schema, row, storageKey(h.meta))
		if err != nil {
			return 0, err
		}
	}
	for _, ix := range db.cat.TableIndexes(h.meta.Name, false) {
		if !ix.Unique {
			continue
		}
		bt := h.indexes[strings.ToLower(ix.Name)]
		if bt == nil {
			continue
		}
		key, err := keyFor(h.meta.Schema, row, ix.Columns)
		if err != nil {
			return 0, err
		}
		if existsInRange(bt, key) {
			return 0, fmt.Errorf("engine: duplicate key for unique index %s", ix.Name)
		}
	}

	rec := sqltypes.EncodeRow(nil, row)
	tid, err := h.heap.Insert(rec)
	if err != nil {
		return 0, err
	}
	if h.primary != nil {
		if err := h.primary.Put(tidSuffix(pkey, tid), tidBytes(tid)); err != nil {
			return 0, err
		}
	}
	for name, bt := range h.indexes {
		ix := db.cat.Index(name)
		if ix == nil {
			continue
		}
		key, err := keyFor(h.meta.Schema, row, ix.Columns)
		if err != nil {
			return 0, err
		}
		if err := bt.Put(tidSuffix(key, tid), tidBytes(tid)); err != nil {
			return 0, err
		}
	}
	logToSideLog(h, false, tid, row)
	return tid, nil
}

// existsInRange reports whether any entry starts with the given key
// prefix.
func existsInRange(bt *storage.BTree, prefix []byte) bool {
	it := bt.Seek(prefix)
	if !it.Next() {
		return false
	}
	k := it.Key()
	return len(k) >= len(prefix) && string(k[:len(prefix)]) == string(prefix)
}

// deleteRow removes the row at tid, maintaining indexes. The caller
// must hold the table's X lock and pass the decoded row.
func (db *DB) deleteRow(h *tableHandle, tid storage.TID, row sqltypes.Row) error {
	if err := h.heap.Delete(tid); err != nil {
		return err
	}
	if h.primary != nil {
		pkey, err := keyFor(h.meta.Schema, row, storageKey(h.meta))
		if err != nil {
			return err
		}
		if _, err := h.primary.Delete(tidSuffix(pkey, tid)); err != nil {
			return err
		}
	}
	for name, bt := range h.indexes {
		ix := db.cat.Index(name)
		if ix == nil {
			continue
		}
		key, err := keyFor(h.meta.Schema, row, ix.Columns)
		if err != nil {
			return err
		}
		if _, err := bt.Delete(tidSuffix(key, tid)); err != nil {
			return err
		}
	}
	logToSideLog(h, true, tid, row)
	return nil
}

// BulkInsert loads rows into a table efficiently, bypassing SQL but
// maintaining structures and uniqueness like the normal path. Used by
// the workload generator.
func (db *DB) BulkInsert(table string, rows []sqltypes.Row) error {
	h := db.handle(table)
	if h == nil {
		return fmt.Errorf("engine: unknown table %q", table)
	}
	// The WAL transaction (gate read side) is opened before the table
	// lock — same order as Session.Exec.
	wtx := db.wal.Begin()
	session := db.nextSession.Add(1)
	if err := db.locks.Acquire(session, strings.ToLower(table), lockX); err != nil {
		wtx.Commit(false)
		return err
	}
	defer db.locks.ReleaseAll(session)
	detach := db.attachWalTxn(h, wtx)
	var err error
	for _, row := range rows {
		var coerced sqltypes.Row
		if coerced, err = coerceRow(h.meta.Schema, row); err != nil {
			break
		}
		if _, err = db.insertRow(h, coerced); err != nil {
			break
		}
	}
	detach()
	// Finish (and on success wait out) the WAL transaction before the
	// deferred lock release.
	if ferr := wtx.Commit(err == nil); ferr != nil && err == nil {
		err = ferr
	}
	if err != nil {
		return err
	}
	db.syncMeta(h)
	return nil
}

// heapRowIter adapts a heap iterator to the executor's RowIter.
type heapRowIter struct {
	it *storage.HeapIter
}

func (r *heapRowIter) Next() (sqltypes.Row, bool, error) {
	_, rec, ok, err := r.it.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	row, err := sqltypes.DecodeRow(rec)
	if err != nil {
		return nil, false, err
	}
	return row, true, nil
}

func (r *heapRowIter) Close() error { return nil }

// heapBatchRowIter adapts the heap's page-at-a-time batch scan to the
// executor's RowBatchIter. Each record batch is decoded into a reused
// value arena; the arena (and the record batch under it) is recycled on
// the next call, which is exactly the executor's batch ownership
// contract.
type heapBatchRowIter struct {
	it     *storage.HeapBatchIter
	rb     storage.RecBatch
	arena  []sqltypes.Value
	bounds []int // bounds[i]..bounds[i+1] delimit row i in arena
}

func (r *heapBatchRowIter) NextBatch(b *executor.Batch) (bool, error) {
	b.Reset()
	ok, err := r.it.NextBatchMax(&r.rb, executor.BatchSize)
	if err != nil || !ok {
		return false, err
	}
	r.arena = r.arena[:0]
	r.bounds = append(r.bounds[:0], 0)
	for _, rec := range r.rb.Recs {
		if r.arena, err = sqltypes.AppendDecodedRow(r.arena, rec); err != nil {
			return false, err
		}
		r.bounds = append(r.bounds, len(r.arena))
	}
	// Carve the row slices only after every decode: AppendDecodedRow may
	// move the arena while growing it.
	for i := 0; i+1 < len(r.bounds); i++ {
		lo, hi := r.bounds[i], r.bounds[i+1]
		b.Rows = append(b.Rows, sqltypes.Row(r.arena[lo:hi:hi]))
	}
	return true, nil
}

// Close releases the page pins backing the last record batch.
func (r *heapBatchRowIter) Close() error { return r.it.Close() }

// btreeFetchIter walks a B-Tree key range whose values are TIDs and
// fetches the base rows from the heap.
type btreeFetchIter struct {
	it   *storage.Iterator
	hi   []byte
	heap *storage.Heap
	prof *storage.WaitProf
}

func (r *btreeFetchIter) Next() (sqltypes.Row, bool, error) {
	for r.it.Next() {
		if bytes.Compare(r.it.Key(), r.hi) >= 0 {
			return nil, false, nil
		}
		tid := tidFromBytes(r.it.Value())
		rec, ok, err := r.heap.GetProf(tid, r.prof)
		if err != nil {
			return nil, false, err
		}
		if !ok {
			return nil, false, fmt.Errorf("engine: dangling index entry for TID %v", tid)
		}
		row, err := sqltypes.DecodeRow(rec)
		if err != nil {
			return nil, false, err
		}
		return row, true, nil
	}
	return nil, false, r.it.Err()
}

func (r *btreeFetchIter) Close() error { return nil }

// ScanTable implements executor.Storage.
func (s executorStorage) ScanTable(name string) (executor.RowIter, error) {
	if vt := s.db.virtualTable(name); vt != nil {
		return &executor.SliceRowIter{Rows: vt.provider()}, nil
	}
	h := s.db.handle(name)
	if h == nil {
		return nil, fmt.Errorf("engine: unknown table %q", name)
	}
	return &heapRowIter{it: h.heap.IterProf(s.prof)}, nil
}

// ScanTableBatch implements executor.BatchStorage: base tables scan
// page-at-a-time through the heap batch iterator; virtual table
// snapshots are already materialized, so the slice iterator serves
// them in both modes.
func (s executorStorage) ScanTableBatch(name string) (executor.RowBatchIter, error) {
	if vt := s.db.virtualTable(name); vt != nil {
		return &executor.SliceRowIter{Rows: vt.provider()}, nil
	}
	h := s.db.handle(name)
	if h == nil {
		return nil, fmt.Errorf("engine: unknown table %q", name)
	}
	return &heapBatchRowIter{it: h.heap.ScanBatchProf(s.prof)}, nil
}

// IndexRange implements executor.Storage.
func (s executorStorage) IndexRange(table, index string, lo, hi []byte) (executor.RowIter, error) {
	h := s.db.handle(table)
	if h == nil {
		return nil, fmt.Errorf("engine: unknown table %q", table)
	}
	ix := s.db.cat.Index(index)
	if ix == nil {
		return nil, fmt.Errorf("engine: unknown index %q", index)
	}
	if ix.Virtual {
		return nil, fmt.Errorf("engine: virtual index %s cannot be executed (what-if only)", index)
	}
	bt := h.indexes[strings.ToLower(index)]
	if bt == nil {
		return nil, fmt.Errorf("engine: index %s has no storage", index)
	}
	return &btreeFetchIter{it: bt.SeekProf(lo, s.prof), hi: hi, heap: h.heap, prof: s.prof}, nil
}

// PrimaryRange implements executor.Storage.
func (s executorStorage) PrimaryRange(table string, lo, hi []byte) (executor.RowIter, error) {
	h := s.db.handle(table)
	if h == nil {
		return nil, fmt.Errorf("engine: unknown table %q", table)
	}
	if h.primary == nil {
		return nil, fmt.Errorf("engine: table %s has no primary B-Tree", table)
	}
	return &btreeFetchIter{it: h.primary.SeekProf(lo, s.prof), hi: hi, heap: h.heap, prof: s.prof}, nil
}

// scanAll collects every row of a table with its TID (DML helper).
func (db *DB) scanAll(h *tableHandle) ([]storage.TID, []sqltypes.Row, error) {
	var tids []storage.TID
	var rows []sqltypes.Row
	it := h.heap.Iter()
	for {
		tid, rec, ok, err := it.Next()
		if err != nil {
			return nil, nil, err
		}
		if !ok {
			return tids, rows, nil
		}
		row, err := sqltypes.DecodeRow(rec)
		if err != nil {
			return nil, nil, err
		}
		tids = append(tids, tid)
		rows = append(rows, row)
	}
}

// rebuildTable rewrites the heap compactly (ordered by key for BTREE)
// and rebuilds the primary structure and every secondary index. Used
// by MODIFY.
func (db *DB) rebuildTable(h *tableHandle, structure catalog.Structure, keyCols []string) error {
	_, rows, err := db.scanAll(h)
	if err != nil {
		return err
	}
	if structure == catalog.BTree {
		if len(keyCols) == 0 {
			return fmt.Errorf("engine: MODIFY TO BTREE needs key columns or a primary key on %s", h.meta.Name)
		}
		// Cluster rows by key order.
		keys := make([][]byte, len(rows))
		for i, r := range rows {
			if keys[i], err = keyFor(h.meta.Schema, r, keyCols); err != nil {
				return err
			}
		}
		sort.SliceStable(rows, func(i, j int) bool { return string(keys[i]) < string(keys[j]) })
	}

	if err := h.heap.Truncate(); err != nil {
		return err
	}
	// Reset or drop the primary structure file.
	if h.primary != nil {
		if err := h.primary.File().Remove(); err != nil {
			return err
		}
		h.primary = nil
	}
	if structure == catalog.BTree {
		pf, err := db.newFile(db.primaryPath(h.meta.Name))
		if err != nil {
			return err
		}
		if h.primary, err = storage.CreateBTree(pf); err != nil {
			return err
		}
	} else {
		// Make sure a stale primary file is gone.
		_ = removeIfExists(db.primaryPath(h.meta.Name))
	}
	// Reset secondary index files.
	for name, bt := range h.indexes {
		if err := bt.File().Remove(); err != nil {
			return err
		}
		xf, err := db.newFile(db.indexPath(name))
		if err != nil {
			return err
		}
		if h.indexes[name], err = storage.CreateBTree(xf); err != nil {
			return err
		}
	}

	h.meta.Structure = structure
	if structure == catalog.BTree {
		h.meta.StorageKey = keyCols
	} else {
		h.meta.StorageKey = nil
	}
	for _, row := range rows {
		if _, err := db.insertRow(h, row); err != nil {
			return err
		}
	}
	// After a rebuild every page is a main page: no overflow.
	h.heap.SetMainPages(h.heap.Pages())
	db.syncMeta(h)
	return db.cat.Save()
}

func removeIfExists(path string) error {
	err := os.Remove(path)
	if err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}
