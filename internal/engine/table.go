package engine

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/catalog"
	"repro/internal/executor"
	"repro/internal/sqltypes"
	"repro/internal/storage"
)

// MaxTextBytes bounds text column values so that every row fits a
// B-Tree entry after encoding.
const MaxTextBytes = 512

// coerceRow validates and coerces a row against the table schema:
// ints widen to floats, anything else must match or be NULL.
func coerceRow(schema sqltypes.Schema, row sqltypes.Row) (sqltypes.Row, error) {
	if len(row) != schema.Len() {
		return nil, fmt.Errorf("engine: row has %d values, table has %d columns", len(row), schema.Len())
	}
	out := make(sqltypes.Row, len(row))
	for i, v := range row {
		col := schema.Columns[i]
		switch {
		case v.IsNull():
			out[i] = v
		case v.T == col.Type:
			if v.T == sqltypes.Text && len(v.S) > MaxTextBytes {
				return nil, fmt.Errorf("engine: value for %s exceeds %d bytes", col.Name, MaxTextBytes)
			}
			out[i] = v
		case col.Type == sqltypes.Float && v.T == sqltypes.Int:
			out[i] = sqltypes.NewFloat(float64(v.I))
		case col.Type == sqltypes.Int && v.T == sqltypes.Float && v.F == float64(int64(v.F)):
			out[i] = sqltypes.NewInt(int64(v.F))
		default:
			return nil, fmt.Errorf("engine: type mismatch for column %s: %s value into %s column",
				col.Name, v.T, col.Type)
		}
	}
	return out, nil
}

// keyFor builds the order-preserving key of the given columns.
func keyFor(schema sqltypes.Schema, row sqltypes.Row, cols []string) ([]byte, error) {
	var key []byte
	for _, c := range cols {
		idx := schema.ColIndex(c)
		if idx < 0 {
			return nil, fmt.Errorf("engine: key column %q not in schema", c)
		}
		key = sqltypes.EncodeKey(key, row[idx])
	}
	return key, nil
}

// tidSuffix appends the TID to an index key so duplicate key values
// stay unique. The TID is encoded with EncodeKey so that its first
// byte can never be 0xFF (range upper bounds rely on that).
func tidSuffix(key []byte, tid storage.TID) []byte {
	return sqltypes.EncodeKey(key, sqltypes.NewInt(int64(tid)))
}

// tidSuffixLen is the encoded size of the TID suffix tidSuffix appends:
// EncodeKey of an Int is always tag+float64+tag+int64 = 18 bytes.
const tidSuffixLen = 18

func tidBytes(tid storage.TID) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(tid))
	return b[:]
}

func tidFromBytes(b []byte) storage.TID {
	return storage.TID(binary.BigEndian.Uint64(b))
}

// storageKey returns the columns the BTREE primary structure clusters
// on: the explicit storage key if set, else the primary key.
func storageKey(meta *catalog.Table) []string {
	if len(meta.StorageKey) > 0 {
		return meta.StorageKey
	}
	return meta.PrimaryKey
}

// attachWalTxn points every file of the table at the WAL transaction
// that is about to mutate it, so Page.WillModify captures before-images
// for t. Returns the detach func; callers defer it for the statement's
// duration. The caller holds the table's statement write gate (or a
// table X lock), which is what guarantees a single non-nil attachment
// at a time. A nil t attaches nothing (unlogged paths: DDL rebuilds
// behind the exclusive gate).
func (db *DB) attachWalTxn(h *tableHandle, t *storage.WalTxn) func() {
	if t == nil {
		return func() {}
	}
	files := make([]*storage.File, 0, 2+len(h.indexes))
	files = append(files, h.heap.File())
	if h.primary != nil {
		files = append(files, h.primary.File())
	}
	for _, ix := range h.indexes {
		files = append(files, ix.File())
	}
	for _, f := range files {
		f.SetWALTxn(t)
		f.SetProf(t.Prof())
	}
	return func() {
		for _, f := range files {
			f.SetWALTxn(nil)
			f.SetProf(nil)
		}
	}
}

// checkUnique enforces unique secondary indexes against current
// reality, not a snapshot: the caller holds the table's statement write
// gate, so every candidate version's header is stable while it is
// classified. self is the inserting transaction id.
func (db *DB) checkUnique(h *tableHandle, row sqltypes.Row, self uint64) error {
	for _, ix := range db.cat.TableIndexes(h.meta.Name, false) {
		if !ix.Unique {
			continue
		}
		bt := h.indexes[strings.ToLower(ix.Name)]
		if bt == nil {
			continue
		}
		key, err := keyFor(h.meta.Schema, row, ix.Columns)
		if err != nil {
			return err
		}
		it := bt.Seek(key)
		for it.Next() {
			k := it.Key()
			if len(k) < len(key) || string(k[:len(key)]) != string(key) {
				break
			}
			tid := tidFromBytes(it.Value())
			rec, ok, gerr := h.heap.Get(tid)
			if gerr != nil {
				return gerr
			}
			if !ok || len(rec) < storage.VersionHeaderSize {
				continue // vacuumed: dangling entry awaiting cleanup
			}
			hdr := storage.ReadVersionHeader(rec)
			if hdr.Xmin == self {
				if hdr.Xmax == self {
					continue // this transaction already superseded its own version
				}
				return fmt.Errorf("engine: duplicate key for unique index %s", ix.Name)
			}
			switch db.txns.stateOf(hdr.Xmin) {
			case txnAborted:
				continue // dead version awaiting vacuum
			case txnInflight:
				return db.conflictErr("unique key of index %s contested by in-flight transaction %d", ix.Name, hdr.Xmin)
			}
			// Creator committed; the deleter decides.
			switch {
			case hdr.Xmax == 0:
				return fmt.Errorf("engine: duplicate key for unique index %s", ix.Name)
			case hdr.Xmax == self:
				continue // deleted by this transaction
			default:
				switch db.txns.stateOf(hdr.Xmax) {
				case txnAborted:
					return fmt.Errorf("engine: duplicate key for unique index %s", ix.Name)
				case txnInflight:
					return db.conflictErr("unique key of index %s pending delete by transaction %d", ix.Name, hdr.Xmax)
				}
				// Committed delete: the key is free.
			}
		}
		if err := it.Err(); err != nil {
			return err
		}
	}
	return nil
}

// insertVersion inserts a new record version (the MVCC header vh plus
// the encoded row), maintaining the primary structure and all secondary
// indexes — every heap version gets index entries; visibility filtering
// happens at scan time and vacuum removes entries with the versions.
// The caller holds the table's statement write gate (or a table X
// lock).
func (db *DB) insertVersion(h *tableHandle, row sqltypes.Row, vh storage.VersionHeader, self uint64) (storage.TID, error) {
	if err := db.checkUnique(h, row, self); err != nil {
		return 0, err
	}
	var pkey []byte
	if h.primary != nil {
		var err error
		pkey, err = keyFor(h.meta.Schema, row, storageKey(h.meta))
		if err != nil {
			return 0, err
		}
	}
	rec := make([]byte, storage.VersionHeaderSize)
	storage.PutVersionHeader(rec, vh)
	rec = sqltypes.EncodeRow(rec, row)
	tid, err := h.heap.Insert(rec)
	if err != nil {
		return 0, err
	}
	if h.primary != nil {
		if err := h.primary.Put(tidSuffix(pkey, tid), tidBytes(tid)); err != nil {
			return 0, err
		}
	}
	for name, bt := range h.indexes {
		ix := db.cat.Index(name)
		if ix == nil {
			continue
		}
		key, err := keyFor(h.meta.Schema, row, ix.Columns)
		if err != nil {
			return 0, err
		}
		if err := bt.Put(tidSuffix(key, tid), tidBytes(tid)); err != nil {
			return 0, err
		}
	}
	logToSideLog(h, false, tid, row)
	return tid, nil
}

// dropVersionIndexEntries removes the index entries pointing at one
// reclaimed version (vacuum's half of index maintenance).
func (db *DB) dropVersionIndexEntries(h *tableHandle, tid storage.TID, row sqltypes.Row) error {
	if h.primary != nil {
		pkey, err := keyFor(h.meta.Schema, row, storageKey(h.meta))
		if err != nil {
			return err
		}
		if _, err := h.primary.Delete(tidSuffix(pkey, tid)); err != nil {
			return err
		}
	}
	for name, bt := range h.indexes {
		ix := db.cat.Index(name)
		if ix == nil {
			continue
		}
		key, err := keyFor(h.meta.Schema, row, ix.Columns)
		if err != nil {
			return err
		}
		if _, err := bt.Delete(tidSuffix(key, tid)); err != nil {
			return err
		}
	}
	logToSideLog(h, true, tid, row)
	return nil
}

// BulkInsert loads rows into a table efficiently, bypassing SQL but
// maintaining structures and uniqueness like the normal path. Rows are
// stamped with the frozen transaction id — committed forever — so the
// load is visible even to snapshots taken before it finished (the bulk
// path trades that anomaly for not holding an id open; it runs under a
// table X lock, so no concurrent writer interleaves). Used by the
// workload generator.
func (db *DB) BulkInsert(table string, rows []sqltypes.Row) error {
	h := db.handle(table)
	if h == nil {
		return fmt.Errorf("engine: unknown table %q", table)
	}
	// The WAL transaction (gate read side) is opened before the table
	// lock — same order as Session.Exec.
	wtx := db.wal.Begin()
	session := db.nextSession.Add(1)
	if err := db.locks.Acquire(session, strings.ToLower(table), lockX); err != nil {
		wtx.Commit(false)
		return err
	}
	defer db.locks.ReleaseAll(session)
	detach := db.attachWalTxn(h, wtx)
	var err error
	var inserted int64
	for _, row := range rows {
		var coerced sqltypes.Row
		if coerced, err = coerceRow(h.meta.Schema, row); err != nil {
			break
		}
		if _, err = db.insertVersion(h, coerced, storage.VersionHeader{Xmin: frozenTxnID}, frozenTxnID); err != nil {
			break
		}
		inserted++
	}
	detach()
	// Finish (and on success wait out) the WAL transaction before the
	// deferred lock release.
	if ferr := wtx.Commit(err == nil); ferr != nil && err == nil {
		err = ferr
	}
	if err != nil {
		return err
	}
	h.heap.AdjustRows(inserted)
	db.syncMeta(h)
	return nil
}

// heapRowIter adapts a heap iterator to the executor's RowIter,
// filtering versions through the statement's snapshot. Rows are
// decoded into a reused scratch slice and carved as stable copies out
// of a chunked arena: one allocation per chunk instead of one per row,
// matching the batch path's amortization on the row path too.
type heapRowIter struct {
	it      *storage.HeapIter
	snap    *snapshot
	recBuf  []byte
	scratch []sqltypes.Value
	arena   executor.RowArena
}

func (r *heapRowIter) Next() (sqltypes.Row, bool, error) {
	for {
		_, rec, ok, err := r.it.NextBuf(r.recBuf[:0])
		r.recBuf = rec
		if err != nil || !ok {
			return nil, false, err
		}
		if len(rec) < storage.VersionHeaderSize {
			return nil, false, fmt.Errorf("engine: unversioned heap record")
		}
		if !r.snap.visible(storage.ReadVersionHeader(rec)) {
			continue
		}
		r.scratch = r.scratch[:0]
		if r.scratch, err = sqltypes.AppendDecodedRow(r.scratch, storage.VersionPayload(rec)); err != nil {
			return nil, false, err
		}
		return r.arena.Clone(sqltypes.Row(r.scratch)), true, nil
	}
}

func (r *heapRowIter) Close() error { return nil }

// heapBatchRowIter adapts the heap's page-at-a-time batch scan to the
// executor's RowBatchIter. Each record batch is decoded into a reused
// value arena; the arena (and the record batch under it) is recycled on
// the next call, which is exactly the executor's batch ownership
// contract.
type heapBatchRowIter struct {
	it     *storage.HeapBatchIter
	snap   *snapshot
	rb     storage.RecBatch
	sel    []int // reused visibility selection backing array
	arena  []sqltypes.Value
	bounds []int // bounds[i]..bounds[i+1] delimit row i in arena
}

func (r *heapBatchRowIter) NextBatch(b *executor.Batch) (bool, error) {
	b.Reset()
	for {
		ok, err := r.it.NextBatchMax(&r.rb, executor.BatchSize)
		if err != nil || !ok {
			return false, err
		}
		// Visibility selection over the zero-copy record batch: Sel lists
		// the visible record indexes; only those are decoded. A batch
		// whose every version is invisible is skipped wholesale.
		r.sel = r.sel[:0]
		for i, rec := range r.rb.Recs {
			if len(rec) < storage.VersionHeaderSize {
				return false, fmt.Errorf("engine: unversioned heap record")
			}
			if r.snap.visible(storage.ReadVersionHeader(rec)) {
				r.sel = append(r.sel, i)
			}
		}
		r.rb.Sel = r.sel
		if len(r.sel) == 0 {
			continue
		}
		r.arena = r.arena[:0]
		r.bounds = append(r.bounds[:0], 0)
		for _, i := range r.sel {
			if r.arena, err = sqltypes.AppendDecodedRow(r.arena, storage.VersionPayload(r.rb.Recs[i])); err != nil {
				return false, err
			}
			r.bounds = append(r.bounds, len(r.arena))
		}
		// Carve the row slices only after every decode: AppendDecodedRow may
		// move the arena while growing it.
		for i := 0; i+1 < len(r.bounds); i++ {
			lo, hi := r.bounds[i], r.bounds[i+1]
			b.Rows = append(b.Rows, sqltypes.Row(r.arena[lo:hi:hi]))
		}
		return true, nil
	}
}

// Close releases the page pins backing the last record batch.
func (r *heapBatchRowIter) Close() error { return r.it.Close() }

// btreeFetchIter walks a B-Tree key range whose values are TIDs and
// fetches the base rows from the heap, filtering versions through the
// statement's snapshot. A dangling entry (vacuum reclaimed the version
// under a buffered iterator) is skipped, as is a reused slot holding a
// version the snapshot cannot see — any such reuse happened after the
// snapshot, so visibility filters it out.
type btreeFetchIter struct {
	it   *storage.Iterator
	hi   []byte
	heap *storage.Heap
	snap *snapshot
	prof *storage.WaitProf
}

func (r *btreeFetchIter) Next() (sqltypes.Row, bool, error) {
	for r.it.Next() {
		if bytes.Compare(r.it.Key(), r.hi) >= 0 {
			return nil, false, nil
		}
		tid := tidFromBytes(r.it.Value())
		rec, ok, err := r.heap.GetProf(tid, r.prof)
		if err != nil {
			return nil, false, err
		}
		if !ok || len(rec) < storage.VersionHeaderSize {
			continue // reclaimed under the scan
		}
		if !r.snap.visible(storage.ReadVersionHeader(rec)) {
			continue
		}
		row, err := sqltypes.DecodeRow(storage.VersionPayload(rec))
		if err != nil {
			return nil, false, err
		}
		return row, true, nil
	}
	return nil, false, r.it.Err()
}

func (r *btreeFetchIter) Close() error { return nil }

// ScanTable implements executor.Storage.
func (s executorStorage) ScanTable(name string) (executor.RowIter, error) {
	if vt := s.db.virtualTable(name); vt != nil {
		return &executor.SliceRowIter{Rows: vt.provider()}, nil
	}
	h := s.db.handle(name)
	if h == nil {
		return nil, fmt.Errorf("engine: unknown table %q", name)
	}
	return &heapRowIter{it: h.heap.IterProf(s.prof), snap: s.snapshot()}, nil
}

// ScanTableBatch implements executor.BatchStorage: base tables scan
// page-at-a-time through the heap batch iterator; virtual table
// snapshots are already materialized, so the slice iterator serves
// them in both modes.
func (s executorStorage) ScanTableBatch(name string) (executor.RowBatchIter, error) {
	if vt := s.db.virtualTable(name); vt != nil {
		return &executor.SliceRowIter{Rows: vt.provider()}, nil
	}
	h := s.db.handle(name)
	if h == nil {
		return nil, fmt.Errorf("engine: unknown table %q", name)
	}
	return &heapBatchRowIter{it: h.heap.ScanBatchProf(s.prof), snap: s.snapshot()}, nil
}

// morselSource implements executor.MorselSource over one heap table:
// page-count enumeration plus independent page-range batch scans, all
// filtered through the same captured statement snapshot. Each worker's
// heapBatchRowIter holds its own pins, latch and decode arena.
type morselSource struct {
	h    *tableHandle
	snap *snapshot
	prof *storage.WaitProf // all-atomic, safe to share across workers
}

func (m *morselSource) Pages() uint32 { return m.h.heap.Pages() }

func (m *morselSource) ScanRange(lo, hi uint32) (executor.RowBatchIter, error) {
	return &heapBatchRowIter{it: m.h.heap.ScanBatchRange(lo, hi, m.prof), snap: m.snap}, nil
}

// MorselTable implements executor.MorselStorage. Virtual tables are
// already-materialized snapshots — nothing to partition, so they
// report ok=false and stay on the serial path.
func (s executorStorage) MorselTable(name string) (executor.MorselSource, bool, error) {
	if vt := s.db.virtualTable(name); vt != nil {
		return nil, false, nil
	}
	h := s.db.handle(name)
	if h == nil {
		return nil, false, fmt.Errorf("engine: unknown table %q", name)
	}
	return &morselSource{h: h, snap: s.snapshot(), prof: s.prof}, true, nil
}

// IndexRange implements executor.Storage.
func (s executorStorage) IndexRange(table, index string, lo, hi []byte) (executor.RowIter, error) {
	h := s.db.handle(table)
	if h == nil {
		return nil, fmt.Errorf("engine: unknown table %q", table)
	}
	ix := s.db.cat.Index(index)
	if ix == nil {
		return nil, fmt.Errorf("engine: unknown index %q", index)
	}
	if ix.Virtual {
		return nil, fmt.Errorf("engine: virtual index %s cannot be executed (what-if only)", index)
	}
	bt := h.indexes[strings.ToLower(index)]
	if bt == nil {
		return nil, fmt.Errorf("engine: index %s has no storage", index)
	}
	return &btreeFetchIter{it: bt.SeekProf(lo, s.prof), hi: hi, heap: h.heap, snap: s.snapshot(), prof: s.prof}, nil
}

// PrimaryRange implements executor.Storage.
func (s executorStorage) PrimaryRange(table string, lo, hi []byte) (executor.RowIter, error) {
	h := s.db.handle(table)
	if h == nil {
		return nil, fmt.Errorf("engine: unknown table %q", table)
	}
	if h.primary == nil {
		return nil, fmt.Errorf("engine: table %s has no primary B-Tree", table)
	}
	return &btreeFetchIter{it: h.primary.SeekProf(lo, s.prof), hi: hi, heap: h.heap, snap: s.snapshot(), prof: s.prof}, nil
}

// scanAll collects every committed-visible row of a table with its TID
// (DDL rebuild helper). It reads against current reality: callers hold
// a table X lock, so no writer is in flight on the table and reality is
// final for it.
func (db *DB) scanAll(h *tableHandle) ([]storage.TID, []sqltypes.Row, error) {
	sn := db.txns.realitySnapshot()
	var tids []storage.TID
	var rows []sqltypes.Row
	it := h.heap.Iter()
	for {
		tid, rec, ok, err := it.Next()
		if err != nil {
			return nil, nil, err
		}
		if !ok {
			return tids, rows, nil
		}
		if len(rec) < storage.VersionHeaderSize {
			return nil, nil, fmt.Errorf("engine: unversioned record %v in %s", tid, h.meta.Name)
		}
		if !sn.visible(storage.ReadVersionHeader(rec)) {
			continue
		}
		row, err := sqltypes.DecodeRow(storage.VersionPayload(rec))
		if err != nil {
			return nil, nil, err
		}
		tids = append(tids, tid)
		rows = append(rows, row)
	}
}

// rebuildTable rewrites the heap compactly (ordered by key for BTREE)
// and rebuilds the primary structure and every secondary index. Used
// by MODIFY.
func (db *DB) rebuildTable(h *tableHandle, structure catalog.Structure, keyCols []string) error {
	_, rows, err := db.scanAll(h)
	if err != nil {
		return err
	}
	if structure == catalog.BTree {
		if len(keyCols) == 0 {
			return fmt.Errorf("engine: MODIFY TO BTREE needs key columns or a primary key on %s", h.meta.Name)
		}
		// Cluster rows by key order.
		keys := make([][]byte, len(rows))
		for i, r := range rows {
			if keys[i], err = keyFor(h.meta.Schema, r, keyCols); err != nil {
				return err
			}
		}
		sort.SliceStable(rows, func(i, j int) bool { return string(keys[i]) < string(keys[j]) })
	}

	if err := h.heap.Truncate(); err != nil {
		return err
	}
	// Reset or drop the primary structure file.
	if h.primary != nil {
		if err := h.primary.File().Remove(); err != nil {
			return err
		}
		h.primary = nil
	}
	if structure == catalog.BTree {
		pf, err := db.newFile(db.primaryPath(h.meta.Name))
		if err != nil {
			return err
		}
		if h.primary, err = storage.CreateBTree(pf); err != nil {
			return err
		}
	} else {
		// Make sure a stale primary file is gone.
		_ = removeIfExists(db.primaryPath(h.meta.Name))
	}
	// Reset secondary index files.
	for name, bt := range h.indexes {
		if err := bt.File().Remove(); err != nil {
			return err
		}
		xf, err := db.newFile(db.indexPath(name))
		if err != nil {
			return err
		}
		if h.indexes[name], err = storage.CreateBTree(xf); err != nil {
			return err
		}
	}

	h.meta.Structure = structure
	if structure == catalog.BTree {
		h.meta.StorageKey = keyCols
	} else {
		h.meta.StorageKey = nil
	}
	// Rebuilt rows are frozen: the rebuild keeps only committed-visible
	// versions, so their history is irrelevant and the compacted heap
	// starts with clean single-version chains.
	for _, row := range rows {
		if _, err := db.insertVersion(h, row, storage.VersionHeader{Xmin: frozenTxnID}, frozenTxnID); err != nil {
			return err
		}
	}
	h.heap.ResetRows(int64(len(rows)))
	// After a rebuild every page is a main page: no overflow.
	h.heap.SetMainPages(h.heap.Pages())
	db.syncMeta(h)
	return db.cat.Save()
}

func removeIfExists(path string) error {
	err := os.Remove(path)
	if err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}
