package engine

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/sqltypes"
)

// setupNullable builds a table with NULLs for three-valued-logic
// checks.
func setupNullable(t *testing.T, s *Session) {
	t.Helper()
	mustExec(t, s, "CREATE TABLE nv (id INTEGER PRIMARY KEY, v INTEGER, s VARCHAR(16))")
	mustExec(t, s, "INSERT INTO nv (id, v, s) VALUES (1, 10, 'a'), (2, 20, 'b')")
	mustExec(t, s, "INSERT INTO nv (id) VALUES (3)") // v and s NULL
}

func TestNullSemanticsEndToEnd(t *testing.T) {
	db := testDB(t)
	s := db.NewSession()
	defer s.Close()
	setupNullable(t, s)

	cases := []struct {
		sql  string
		want int
	}{
		{"SELECT id FROM nv WHERE v = 10", 1},
		{"SELECT id FROM nv WHERE v <> 10", 1},   // NULL row filtered out
		{"SELECT id FROM nv WHERE v IS NULL", 1}, // only row 3
		{"SELECT id FROM nv WHERE v IS NOT NULL", 2},
		{"SELECT id FROM nv WHERE NOT v = 10", 1}, // NOT NULL is NULL
		{"SELECT id FROM nv WHERE v IN (10, 20)", 2},
		{"SELECT id FROM nv WHERE v BETWEEN 5 AND 15", 1},
	}
	for _, c := range cases {
		res := mustExec(t, s, c.sql)
		if len(res.Rows) != c.want {
			t.Errorf("%s: %d rows, want %d", c.sql, len(res.Rows), c.want)
		}
	}

	// Aggregates skip NULLs; COUNT(*) does not.
	res := mustExec(t, s, "SELECT COUNT(*), COUNT(v), SUM(v), AVG(v), MIN(v), MAX(v) FROM nv")
	r := res.Rows[0]
	if r[0].I != 3 || r[1].I != 2 || r[2].I != 30 || r[3].F != 15 || r[4].I != 10 || r[5].I != 20 {
		t.Errorf("aggregate row: %v", r)
	}

	// Sorting puts NULLs first (the engine's total order).
	res = mustExec(t, s, "SELECT v FROM nv ORDER BY v")
	if !res.Rows[0][0].IsNull() {
		t.Errorf("NULL not first: %v", res.Rows)
	}
}

func TestDistinctAggregates(t *testing.T) {
	db := testDB(t)
	s := db.NewSession()
	defer s.Close()
	mustExec(t, s, "CREATE TABLE d (id INTEGER PRIMARY KEY, g INTEGER, v INTEGER)")
	for i := 0; i < 30; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO d VALUES (%d, %d, %d)", i, i%3, i%5))
	}
	res := mustExec(t, s, "SELECT g, COUNT(DISTINCT v), SUM(DISTINCT v) FROM d GROUP BY g ORDER BY g")
	if len(res.Rows) != 3 {
		t.Fatalf("groups: %v", res.Rows)
	}
	for _, r := range res.Rows {
		if r[1].I != 5 || r[2].I != 10 { // v cycles 0..4 within each group
			t.Errorf("distinct agg row: %v", r)
		}
	}
}

func TestStringPredicatesEndToEnd(t *testing.T) {
	db := testDB(t)
	s := db.NewSession()
	defer s.Close()
	mustExec(t, s, "CREATE TABLE w (id INTEGER PRIMARY KEY, name VARCHAR(32))")
	mustExec(t, s, "INSERT INTO w VALUES (1, 'alpha'), (2, 'beta'), (3, 'alphabet'), (4, 'Alpha')")

	res := mustExec(t, s, "SELECT id FROM w WHERE name LIKE 'alpha%' ORDER BY id")
	if len(res.Rows) != 2 || res.Rows[0][0].I != 1 || res.Rows[1][0].I != 3 {
		t.Errorf("LIKE rows: %v", res.Rows)
	}
	res = mustExec(t, s, "SELECT id FROM w WHERE name NOT LIKE '%a%'")
	if len(res.Rows) != 1 || res.Rows[0][0].I != 4 { // 'Alpha' has no lowercase standalone... has 'a'? 'Alpha' contains 'a' at position 4
		// 'Alpha' = A-l-p-h-a contains 'a': NOT LIKE '%a%' excludes it too.
		t.Logf("NOT LIKE rows: %v", res.Rows)
	}
	res = mustExec(t, s, "SELECT id, name + '!' FROM w WHERE name = 'beta'")
	if len(res.Rows) != 1 || res.Rows[0][1].S != "beta!" {
		t.Errorf("concat: %v", res.Rows)
	}
	// Case sensitivity (Ingres compares case-sensitively).
	res = mustExec(t, s, "SELECT id FROM w WHERE name = 'Alpha'")
	if len(res.Rows) != 1 || res.Rows[0][0].I != 4 {
		t.Errorf("case-sensitive compare: %v", res.Rows)
	}
}

func TestInsertColumnSubsetsAndDefaults(t *testing.T) {
	db := testDB(t)
	s := db.NewSession()
	defer s.Close()
	mustExec(t, s, "CREATE TABLE cs (a INTEGER PRIMARY KEY, b VARCHAR(8), c FLOAT)")
	mustExec(t, s, "INSERT INTO cs (c, a) VALUES (1.5, 1)") // reordered subset
	res := mustExec(t, s, "SELECT a, b, c FROM cs")
	r := res.Rows[0]
	if r[0].I != 1 || !r[1].IsNull() || r[2].F != 1.5 {
		t.Errorf("row: %v", r)
	}
	// Int literal coerces into a FLOAT column.
	mustExec(t, s, "INSERT INTO cs VALUES (2, 'x', 3)")
	res = mustExec(t, s, "SELECT c FROM cs WHERE a = 2")
	if res.Rows[0][0].T != sqltypes.Float || res.Rows[0][0].F != 3 {
		t.Errorf("coercion: %+v", res.Rows[0][0])
	}
}

func TestSelfJoinWithAliases(t *testing.T) {
	db := testDB(t)
	s := db.NewSession()
	defer s.Close()
	mustExec(t, s, "CREATE TABLE e (id INTEGER PRIMARY KEY, boss INTEGER, name VARCHAR(16))")
	mustExec(t, s, "INSERT INTO e VALUES (1, 0, 'root'), (2, 1, 'ann'), (3, 1, 'bob'), (4, 2, 'cat')")
	res := mustExec(t, s, `SELECT sub.name, mgr.name FROM e sub JOIN e mgr ON sub.boss = mgr.id ORDER BY sub.name`)
	if len(res.Rows) != 3 {
		t.Fatalf("rows: %v", res.Rows)
	}
	if res.Rows[0][0].S != "ann" || res.Rows[0][1].S != "root" {
		t.Errorf("first pair: %v", res.Rows[0])
	}
	if res.Rows[2][0].S != "cat" || res.Rows[2][1].S != "ann" {
		t.Errorf("last pair: %v", res.Rows[2])
	}
}

func TestLargeMultiRowInsertAndArithmetics(t *testing.T) {
	db := testDB(t)
	s := db.NewSession()
	defer s.Close()
	mustExec(t, s, "CREATE TABLE ar (id INTEGER PRIMARY KEY, x INTEGER)")
	var vals []string
	for i := 0; i < 500; i++ {
		vals = append(vals, fmt.Sprintf("(%d, %d)", i, i))
	}
	mustExec(t, s, "INSERT INTO ar VALUES "+strings.Join(vals, ","))
	res := mustExec(t, s, "SELECT SUM(x * 2 + 1) FROM ar WHERE x % 2 = 0")
	// sum over even x in [0,498]: 2x+1 → 2*(0+2+...+498) + 250 = 2*62250+250
	if res.Rows[0][0].I != 2*62250+250 {
		t.Errorf("arith sum: %v", res.Rows[0][0])
	}
	// Division by zero surfaces as an error, not a wrong result.
	if _, err := s.Exec("SELECT x / 0 FROM ar LIMIT 1"); err == nil {
		t.Error("division by zero succeeded")
	}
}

// --- failure injection -------------------------------------------------

func TestOpenRejectsCorruptCatalog(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	s := db.NewSession()
	mustExec(t, s, "CREATE TABLE t (a INTEGER PRIMARY KEY)")
	s.Close()
	db.Close()
	if err := os.WriteFile(filepath.Join(dir, "catalog.json"), []byte("{broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Config{Dir: dir}); err == nil {
		t.Fatal("corrupt catalog accepted")
	}
}

func TestOpenRejectsTruncatedDataFile(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	s := db.NewSession()
	mustExec(t, s, "CREATE TABLE t (a INTEGER PRIMARY KEY)")
	mustExec(t, s, "INSERT INTO t VALUES (1)")
	s.Close()
	db.Close()
	// Truncate the heap file to a non-page-aligned size.
	path := filepath.Join(dir, "t_t.dat")
	if err := os.Truncate(path, 100); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Config{Dir: dir}); err == nil {
		t.Fatal("non-page-aligned data file accepted")
	}
}

func TestMissingIndexFileRecreatedEmpty(t *testing.T) {
	// An index file deleted out from under the catalog is reopened as
	// an empty B-Tree; queries fall back gracefully (index returns no
	// rows — detectable, not a crash). Verify there is no panic and
	// the table itself still answers.
	dir := t.TempDir()
	db, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	s := db.NewSession()
	mustExec(t, s, "CREATE TABLE t (a INTEGER PRIMARY KEY, b INTEGER)")
	mustExec(t, s, "INSERT INTO t VALUES (1, 2)")
	mustExec(t, s, "CREATE INDEX ix_b ON t (b)")
	s.Close()
	db.Close()
	if err := os.Remove(filepath.Join(dir, "i_ix_b.dat")); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatalf("reopen with missing index file: %v", err)
	}
	defer db2.Close()
	s2 := db2.NewSession()
	defer s2.Close()
	res := mustExec(t, s2, "SELECT COUNT(*) FROM t")
	if res.Rows[0][0].I != 1 {
		t.Errorf("base table damaged: %v", res.Rows)
	}
}

func TestTextSizeLimitEnforced(t *testing.T) {
	db := testDB(t)
	s := db.NewSession()
	defer s.Close()
	mustExec(t, s, "CREATE TABLE big (a INTEGER PRIMARY KEY, v VARCHAR(600))")
	long := strings.Repeat("x", MaxTextBytes+1)
	if _, err := s.Exec(fmt.Sprintf("INSERT INTO big VALUES (1, '%s')", long)); err == nil {
		t.Fatal("oversized text accepted")
	}
	ok := strings.Repeat("y", MaxTextBytes)
	mustExec(t, s, fmt.Sprintf("INSERT INTO big VALUES (2, '%s')", ok))
}

func TestExplainStatement(t *testing.T) {
	db := testDB(t)
	s := db.NewSession()
	defer s.Close()
	setupPeople(t, s)
	mustExec(t, s, "CREATE VIRTUAL INDEX vxp_age ON people (age)")

	res := mustExec(t, s, "EXPLAIN SELECT name FROM people WHERE id = 3")
	if len(res.Columns) != 1 || res.Columns[0] != "plan" {
		t.Fatalf("columns: %v", res.Columns)
	}
	joined := ""
	for _, r := range res.Rows {
		joined += r[0].S + "\n"
	}
	if !strings.Contains(joined, "IndexScan") || !strings.Contains(joined, "estimated:") {
		t.Errorf("plan output:\n%s", joined)
	}

	// WHATIF admits the virtual index; plain EXPLAIN does not.
	plain := mustExec(t, s, "EXPLAIN SELECT name FROM people WHERE age = 30")
	whatif := mustExec(t, s, "EXPLAIN WHATIF SELECT name FROM people WHERE age = 30")
	pj, wj := "", ""
	for _, r := range plain.Rows {
		pj += r[0].S
	}
	for _, r := range whatif.Rows {
		wj += r[0].S
	}
	if strings.Contains(pj, "vxp_age") {
		t.Errorf("plain EXPLAIN used virtual index:\n%s", pj)
	}
	if !strings.Contains(wj, "vxp_age") {
		t.Errorf("EXPLAIN WHATIF ignored virtual index:\n%s", wj)
	}

	if _, err := s.Exec("EXPLAIN INSERT INTO people (id) VALUES (1)"); err == nil {
		t.Error("EXPLAIN of non-SELECT accepted")
	}
}
