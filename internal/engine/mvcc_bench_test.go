package engine

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// BenchmarkPointSelectUnderUpdates measures point-select throughput
// from k concurrent reader sessions while one writer session runs
// continuous single-row UPDATEs against the same table — the
// read-under-write scenario the MVCC refactor exists for. The reported
// metric is selects/sec across all readers; b.N counts selects.
func benchPointSelectUnderUpdates(b *testing.B, readers int) {
	db := benchDBForUpdates(b)
	defer db.Close()

	stop := make(chan struct{})
	var writerDone sync.WaitGroup
	writerDone.Add(1)
	go func() {
		defer writerDone.Done()
		w := db.NewSession()
		defer w.Close()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			id := i % benchRows
			if _, err := w.Exec(fmt.Sprintf("UPDATE bench_kv SET v = v + 1 WHERE id = %d", id)); err != nil {
				b.Errorf("writer: %v", err)
				return
			}
			i++
		}
	}()

	b.ResetTimer()
	var next atomic.Int64
	var rg sync.WaitGroup
	for r := 0; r < readers; r++ {
		rg.Add(1)
		go func(seed int) {
			defer rg.Done()
			s := db.NewSession()
			defer s.Close()
			for {
				n := next.Add(1)
				if n > int64(b.N) {
					return
				}
				id := (seed + int(n)) % benchRows
				res, err := s.Exec(fmt.Sprintf("SELECT v FROM bench_kv WHERE id = %d", id))
				if err != nil {
					b.Errorf("reader: %v", err)
					return
				}
				if len(res.Rows) != 1 {
					b.Errorf("point select returned %d rows", len(res.Rows))
					return
				}
			}
		}(r * 17)
	}
	rg.Wait()
	b.StopTimer()
	close(stop)
	writerDone.Wait()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "selects/sec")
}

const benchRows = 256

func benchDBForUpdates(b *testing.B) *DB {
	db, err := Open(Config{Dir: b.TempDir(), PoolPages: 1024})
	if err != nil {
		b.Fatal(err)
	}
	s := db.NewSession()
	defer s.Close()
	if _, err := s.Exec("CREATE TABLE bench_kv (id INTEGER PRIMARY KEY, v INTEGER)"); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < benchRows; i += 64 {
		var sb []byte
		sb = append(sb, "INSERT INTO bench_kv VALUES "...)
		for j := 0; j < 64; j++ {
			if j > 0 {
				sb = append(sb, ',')
			}
			sb = fmt.Appendf(sb, "(%d, 0)", i+j)
		}
		if _, err := s.Exec(string(sb)); err != nil {
			b.Fatal(err)
		}
	}
	return db
}

func BenchmarkPointSelectUnderUpdates1(b *testing.B)  { benchPointSelectUnderUpdates(b, 1) }
func BenchmarkPointSelectUnderUpdates8(b *testing.B)  { benchPointSelectUnderUpdates(b, 8) }
func BenchmarkPointSelectUnderUpdates16(b *testing.B) { benchPointSelectUnderUpdates(b, 16) }
