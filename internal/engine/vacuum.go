package engine

import (
	"sort"
	"strings"

	"repro/internal/sqltypes"
	"repro/internal/storage"
)

// Vacuum reclaims dead row versions. A version is dead when no active
// or future snapshot can see it:
//
//   - its creator aborted (aborted versions are never undone
//     physically, they just become invisible), or
//   - its deleter committed below the vacuum horizon — the id floor
//     under every active snapshot — so every snapshot sees the delete.
//
// Reclaiming drops the version's index entries, frees its heap slot,
// and thereby clips version chains: the newest surviving version's
// Prev pointer goes stale, which readers never follow (scans visit
// slots directly) and chain statistics treat as the chain end.
//
// Vacuum additionally clears aborted Xmax stamps (the deleter aborted,
// so the version is fully live again); once a pass has removed every
// on-disk reference to the ids that were already aborted when it
// started, those ids are retired from the in-memory aborted set.
//
// Locking: per table, vacuum takes IX plus the statement write gate —
// the same footprint as a DML statement — so it serializes with
// writers on that table but never blocks readers and never waits on
// row locks. Work is two-phase per table because page latches are not
// reentrant: phase A collects candidates under a read-only scan, phase
// B mutates under the gate within a WAL transaction.

// VacuumStats summarizes one vacuum pass.
type VacuumStats struct {
	Tables    int   // tables visited successfully
	Reclaimed int64 // dead versions removed (slot + index entries)
	Cleared   int64 // aborted Xmax stamps reset to 0
	Retired   int64 // aborted txn ids proven unreferenced and dropped
	ChainP95  int64 // p95 surviving version-chain length across tables
}

// vacuumCandidate is one slot phase A decided on. A reclaim carries
// the decoded row (needed to compute index keys); a clear does not.
type vacuumCandidate struct {
	tid     storage.TID
	row     sqltypes.Row
	reclaim bool
}

// Vacuum runs one pass over every table. It is called from the
// monitoring daemon's poll loop and from tests; concurrent calls are
// safe but pointless (the second serializes on the per-table gates).
func (db *DB) Vacuum() (VacuumStats, error) {
	var stats VacuumStats
	// The horizon and the aborted set are sampled once, before any
	// table is visited. An id below the horizon that is not in the
	// sampled aborted set is committed: in-flight ids (then or later)
	// are never below the horizon, and the aborted set only grows.
	horizon := db.txns.vacuumHorizon()
	abortedAtStart := db.txns.abortedSet()

	db.mu.Lock()
	handles := make([]*tableHandle, 0, len(db.tables))
	for _, h := range db.tables {
		handles = append(handles, h)
	}
	db.mu.Unlock()
	sort.Slice(handles, func(i, j int) bool { return handles[i].meta.Name < handles[j].meta.Name })

	var (
		chains   []int
		clean    = true
		firstErr error
	)
	for _, h := range handles {
		cl, err := db.vacuumTable(h, horizon, abortedAtStart, &stats)
		if err != nil {
			// One broken table must not stop reclaiming the others, but
			// it does forfeit id retirement: the failed table may still
			// reference aborted ids.
			clean = false
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		chains = append(chains, cl...)
		stats.Tables++
	}

	if clean && len(abortedAtStart) > 0 {
		ids := make([]uint64, 0, len(abortedAtStart))
		for id := range abortedAtStart {
			ids = append(ids, id)
		}
		db.txns.retire(ids)
		stats.Retired = int64(len(ids))
	}
	stats.ChainP95 = chainP95(chains)

	db.vacRuns.Add(1)
	db.vacReclaimed.Add(stats.Reclaimed)
	db.vacCleared.Add(stats.Cleared)
	db.vacChainP95.Store(stats.ChainP95)
	return stats, firstErr
}

// vacuumTable runs one two-phase pass over a single table and returns
// the surviving chain lengths it observed.
func (db *DB) vacuumTable(h *tableHandle, horizon uint64, aborted map[uint64]bool, stats *VacuumStats) (_ []int, err error) {
	// The WAL transaction is opened before any lock, mirroring the DML
	// order (ensureWalTxn runs before the statement's locks), so vacuum
	// never holds the gate while waiting for WAL admission. It must be
	// finished even on error: phase-B page mutations are already in the
	// pool, and the captured images must reach the log before the gate
	// would let the next writer attach.
	wtx := db.wal.Begin()
	sessID := db.nextSession.Add(1)
	defer func() {
		if cerr := wtx.Commit(false); cerr != nil && err == nil {
			err = cerr
		}
		db.locks.ReleaseAll(sessID)
	}()

	tkey := strings.ToLower(h.meta.Name)
	if err := db.locks.Acquire(sessID, tkey, lockIX); err != nil {
		return nil, err
	}
	if err := db.locks.Acquire(sessID, writeGateKey(tkey), lockX); err != nil {
		return nil, err
	}

	// Phase A: read-only scan. Collect reclaim/clear candidates and the
	// Prev-pointer graph for chain statistics. No mutation happens here
	// — heap page latches are not reentrant, so freeing slots from
	// inside the scan callback would self-deadlock.
	var (
		cands    []vacuumCandidate
		prevs    = map[storage.TID]storage.TID{}
		reclaims int64
		cleared  int64
	)
	err = h.heap.Scan(func(tid storage.TID, rec []byte) (bool, error) {
		if len(rec) < storage.VersionHeaderSize {
			return true, nil
		}
		vh := storage.ReadVersionHeader(rec)
		if aborted[vh.Xmin] {
			// Creator aborted: dead regardless of Xmax.
			row, derr := sqltypes.DecodeRow(storage.VersionPayload(rec))
			if derr != nil {
				return false, derr
			}
			cands = append(cands, vacuumCandidate{tid: tid, row: row, reclaim: true})
			return true, nil
		}
		if vh.Xmax != 0 {
			if aborted[vh.Xmax] {
				// Deleter aborted: the version is live, clear the stamp
				// so the id can be retired.
				cands = append(cands, vacuumCandidate{tid: tid})
			} else if vh.Xmax < horizon {
				// Deleter committed below every snapshot's horizon.
				row, derr := sqltypes.DecodeRow(storage.VersionPayload(rec))
				if derr != nil {
					return false, derr
				}
				cands = append(cands, vacuumCandidate{tid: tid, row: row, reclaim: true})
				return true, nil
			}
		}
		if vh.Prev != 0 {
			prevs[tid] = vh.Prev
		}
		return true, nil
	})
	if err != nil {
		return nil, err
	}

	// Phase B: mutate under the gate with the WAL transaction attached,
	// so before/after page images are captured like any DML statement.
	if len(cands) > 0 {
		detach := db.attachWalTxn(h, wtx)
		defer detach()
		for _, c := range cands {
			if c.reclaim {
				if derr := db.dropVersionIndexEntries(h, c.tid, c.row); derr != nil {
					return nil, derr
				}
				if derr := h.heap.FreeSlot(c.tid); derr != nil {
					return nil, derr
				}
				reclaims++
			} else {
				if derr := h.heap.SetXmax(c.tid, 0); derr != nil {
					return nil, derr
				}
				cleared++
			}
		}
	}
	stats.Reclaimed += reclaims
	stats.Cleared += cleared
	return chainLengths(prevs), nil
}

// chainLengths walks the surviving Prev graph from its heads (versions
// no other version points back to) and returns each chain's length. A
// stale Prev pointing at a reclaimed or reused slot simply is not in
// the map and ends the walk; walks are capped defensively in case of
// a (theoretically impossible) cycle.
func chainLengths(prevs map[storage.TID]storage.TID) []int {
	if len(prevs) == 0 {
		return nil
	}
	pointedTo := make(map[storage.TID]bool, len(prevs))
	for _, p := range prevs {
		pointedTo[p] = true
	}
	var out []int
	maxWalk := len(prevs) + 1
	for head := range prevs {
		if pointedTo[head] {
			continue
		}
		n := 1
		for cur, ok := prevs[head]; ok && n < maxWalk; cur, ok = prevs[cur] {
			n++
		}
		out = append(out, n)
	}
	return out
}

// chainP95 returns the 95th-percentile chain length (1 when no chains
// exist — every row is its own single-version chain).
func chainP95(chains []int) int64 {
	if len(chains) == 0 {
		return 1
	}
	sort.Ints(chains)
	i := (len(chains)*95 + 99) / 100
	if i > 0 {
		i--
	}
	return int64(chains[i])
}
