package daemon

// Fault-injection suite: a fault-injecting wrapper substitutes for the
// daemon's target session through the execTarget seam, proving that
// the collection pipeline survives storage errors, loses no drained
// data, and degrades gracefully when the target stays down.

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/monitor"
	"repro/internal/workloaddb"
)

var errInjected = errors.New("injected storage fault")

// flakyDB wraps the target engine behind the daemon's exec seam and
// fails Execs on demand: every nth call, all calls while forced, or
// fatally.
type flakyDB struct {
	db     *engine.DB
	every  int64       // >0: fail every nth Exec
	calls  atomic.Int64
	forced atomic.Bool // fail every Exec while set
	fatal  atomic.Bool // fail with a FatalError while set
	failed atomic.Int64
}

func (f *flakyDB) target() execTarget {
	return &flakySession{f: f, s: f.db.NewSession()}
}

type flakySession struct {
	f *flakyDB
	s *engine.Session
}

// Exec fails before touching the real session, so a failed call
// applies nothing — the fail-stop behavior the carryover's
// exactly-once guarantee is stated under.
func (fs *flakySession) Exec(sql string) (*engine.Result, error) {
	if fs.f.fatal.Load() {
		fs.f.failed.Add(1)
		return nil, Fatal(errInjected)
	}
	if fs.f.forced.Load() || (fs.f.every > 0 && fs.f.calls.Add(1)%fs.f.every == 0) {
		fs.f.failed.Add(1)
		return nil, errInjected
	}
	return fs.s.Exec(sql)
}

func (fs *flakySession) Close() { fs.s.Close() }

// inject reroutes d's target sessions through a flakyDB.
func inject(d *Daemon, target *engine.DB) *flakyDB {
	f := &flakyDB{db: target}
	d.newTarget = f.target
	return f
}

func countRows(t *testing.T, db *engine.DB, query string) int64 {
	t.Helper()
	s := db.NewSession()
	defer s.Close()
	res, err := s.Exec(query)
	if err != nil {
		t.Fatalf("Exec(%q): %v", query, err)
	}
	return res.Rows[0][0].I
}

// TestPollRequeuesFailedWorkload is the regression test for the data
// loss at the old daemon.go appendWorkload call: entries drained from
// the monitor were dropped forever when the insert failed. They must
// land on the next successful poll instead, exactly once.
func TestPollRequeuesFailedWorkload(t *testing.T) {
	f := newFixture(t)
	d, err := New(Config{Source: f.source, Mon: f.mon, Target: f.target})
	if err != nil {
		t.Fatal(err)
	}
	flaky := inject(d, f.target)

	queries := []string{
		"SELECT v FROM t WHERE id = 1",
		"SELECT v FROM t WHERE id = 2",
		"SELECT v FROM t WHERE id = 3",
	}
	for _, q := range queries {
		exec(t, f.sess, q)
	}

	flaky.forced.Store(true)
	if err := d.Poll(); err == nil {
		t.Fatal("poll against a dead target reported success")
	}
	st := d.Stats()
	if st.PollErrors != 1 {
		t.Errorf("PollErrors = %d, want 1", st.PollErrors)
	}
	if st.CarryoverDepth < int64(len(queries)) {
		t.Errorf("CarryoverDepth = %d, want >= %d (drained entries requeued)",
			st.CarryoverDepth, len(queries))
	}
	if n := countRows(t, f.target, "SELECT COUNT(*) FROM "+workloaddb.Workload); n != 0 {
		t.Fatalf("rows landed through a dead target: %d", n)
	}

	flaky.forced.Store(false)
	if err := d.Poll(); err != nil {
		t.Fatalf("poll after recovery: %v", err)
	}
	for _, q := range queries {
		n := countRows(t, f.target, fmt.Sprintf("SELECT COUNT(*) FROM %s WHERE hash = %d",
			workloaddb.Workload, int64(monitor.HashStatement(q))))
		if n != 1 {
			t.Errorf("workload rows for %q = %d, want exactly 1", q, n)
		}
	}
	if depth := d.Stats().CarryoverDepth; depth != 0 {
		t.Errorf("CarryoverDepth after recovery = %d, want 0", depth)
	}
}

// TestRunSurvivesTransientErrors: Run must not terminate on transient
// poll failures; it backs off, retries, and recovers when the target
// heals.
func TestRunSurvivesTransientErrors(t *testing.T) {
	f := newFixture(t)
	d, err := New(Config{
		Source: f.source, Mon: f.mon, Target: f.target,
		Interval:  5 * time.Millisecond,
		RetryBase: time.Millisecond,
		RetryMax:  4 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	flaky := inject(d, f.target)
	flaky.forced.Store(true)

	exec(t, f.sess, "SELECT v FROM t WHERE id = 7")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runDone := make(chan error, 1)
	go func() { runDone <- d.Run(ctx) }()

	deadline := time.After(5 * time.Second)
	for d.Stats().PollErrors < 3 || d.Stats().Retries < 2 {
		select {
		case err := <-runDone:
			t.Fatalf("Run exited on a transient error: %v", err)
		case <-deadline:
			t.Fatalf("no retries observed: %+v", d.Stats())
		case <-time.After(time.Millisecond):
		}
	}

	flaky.forced.Store(false)
	hash := int64(monitor.HashStatement("SELECT v FROM t WHERE id = 7"))
	for countRows(t, f.target, fmt.Sprintf("SELECT COUNT(*) FROM %s WHERE hash = %d",
		workloaddb.Workload, hash)) != 1 {
		select {
		case err := <-runDone:
			t.Fatalf("Run exited before recovery: %v", err)
		case <-deadline:
			t.Fatal("entry never landed after the target healed")
		case <-time.After(time.Millisecond):
		}
	}

	cancel()
	if err := <-runDone; err != context.Canceled {
		t.Errorf("Run returned %v, want context.Canceled", err)
	}
}

// TestRunStopsOnFatal: errors wrapped with Fatal must still terminate
// the loop — fault tolerance is for transient failures only.
func TestRunStopsOnFatal(t *testing.T) {
	f := newFixture(t)
	d, err := New(Config{
		Source: f.source, Mon: f.mon, Target: f.target,
		Interval:  time.Millisecond,
		RetryBase: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	flaky := inject(d, f.target)
	flaky.fatal.Store(true)
	exec(t, f.sess, "SELECT v FROM t WHERE id = 1")

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	err = d.Run(ctx)
	if ctx.Err() != nil {
		t.Fatal("Run did not exit on a fatal error before the timeout")
	}
	if !IsFatal(err) || !errors.Is(err, errInjected) {
		t.Errorf("Run returned %v, want a fatal error wrapping the injected fault", err)
	}
}

// TestCarryoverBounded: when the target stays down, the carryover
// buffer stops at its cap (dropping oldest first, counted) and the
// daemon stops draining so the monitor ring absorbs — and counts — the
// overflow instead of an unbounded queue.
func TestCarryoverBounded(t *testing.T) {
	f := newFixture(t)
	d, err := New(Config{
		Source: f.source, Mon: f.mon, Target: f.target,
		CarryoverCap: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	flaky := inject(d, f.target)
	flaky.forced.Store(true)

	// Clear the fixture's setup statements so the drop accounting below
	// covers exactly the generated load.
	f.mon.DrainWorkload()
	for i := 0; i < 20; i++ {
		exec(t, f.sess, fmt.Sprintf("SELECT v FROM t WHERE id = %d AND v = 'cap'", i))
	}
	if err := d.Poll(); err == nil {
		t.Fatal("poll against a dead target reported success")
	}
	st := d.Stats()
	if st.CarryoverDepth != 8 {
		t.Errorf("CarryoverDepth = %d, want 8 (the cap)", st.CarryoverDepth)
	}
	if st.CarryoverDrops != 12 {
		t.Errorf("CarryoverDrops = %d, want 12", st.CarryoverDrops)
	}

	// With the carryover saturated, further polls must not drain the
	// ring: fresh entries wait in the monitor.
	for i := 0; i < 5; i++ {
		exec(t, f.sess, fmt.Sprintf("SELECT v FROM t WHERE id = %d AND v = 'ring'", i))
	}
	if err := d.Poll(); err == nil {
		t.Fatal("poll against a dead target reported success")
	}
	if depth := d.Stats().CarryoverDepth; depth != 8 {
		t.Errorf("CarryoverDepth grew past the cap: %d", depth)
	}
	if ringDepth := f.mon.WorkloadDepth(); ringDepth < 5 {
		t.Errorf("monitor ring drained while carryover was full: depth %d, want >= 5", ringDepth)
	}

	// Heal: the capped carryover flushes first, then the ring.
	flaky.forced.Store(false)
	if err := d.Poll(); err != nil {
		t.Fatalf("poll after recovery: %v", err)
	}
	if err := d.Poll(); err != nil {
		t.Fatalf("second poll after recovery: %v", err)
	}
	if depth := d.Stats().CarryoverDepth; depth != 0 {
		t.Errorf("CarryoverDepth after recovery = %d", depth)
	}
	if got := countRows(t, f.target, "SELECT COUNT(*) FROM "+workloaddb.Workload); got != 8+5 {
		t.Errorf("persisted workload rows = %d, want %d (cap survivors + ring)", got, 8+5)
	}
}

// TestFaultInjectionExactlyOnce is the acceptance scenario: with every
// nth target Exec failing, a daemon run over a generated workload
// persists every drained workload entry exactly once, Run never exits
// before context cancellation, and alert errors are counted without
// stopping the polling loop.
func TestFaultInjectionExactlyOnce(t *testing.T) {
	f := newFixture(t)
	var healthyFired atomic.Int64
	d, err := New(Config{
		Source: f.source, Mon: f.mon, Target: f.target,
		Interval:  3 * time.Millisecond,
		RetryBase: time.Millisecond,
		RetryMax:  4 * time.Millisecond,
		Alerts: []Alert{
			{Name: "broken", Query: "SELECT nope FROM missing", Op: ">", Threshold: 0},
			{
				Name: "healthy", Query: "SELECT statements FROM ima_statistics",
				Op: ">=", Threshold: 0,
				Action: func(Event) { healthyFired.Add(1) },
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	flaky := inject(d, f.target)
	// Every 9th Exec against the target fails. A busy poll issues up to
	// eight consecutive Execs (workload, statements, references, three
	// object tables, statistics, latency — minus the tables with nothing
	// new), so the failure position drifts across polls: some polls fail,
	// some succeed. (With every ≤ 3 no poll could ever fully succeed.)
	flaky.every = 9

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runDone := make(chan error, 1)
	go func() { runDone <- d.Run(ctx) }()

	const n = 40
	queries := make([]string, n)
	for i := range queries {
		queries[i] = fmt.Sprintf("SELECT v FROM t WHERE id = %d AND v = 'w%d'", i%10, i)
		exec(t, f.sess, queries[i])
		time.Sleep(500 * time.Microsecond) // polls interleave with the load
	}

	// Wait until every generated entry has been persisted and nothing
	// is left in flight in the carryover. (The monitor ring never goes
	// idle here: the alert queries themselves are monitored executions,
	// so each poll feeds the ring the next poll drains.)
	allLanded := func() bool {
		for _, q := range queries {
			got := countRows(t, f.target, fmt.Sprintf("SELECT COUNT(*) FROM %s WHERE hash = %d",
				workloaddb.Workload, int64(monitor.HashStatement(q))))
			if got == 0 {
				return false
			}
		}
		return true
	}
	deadline := time.After(20 * time.Second)
	for !(d.Stats().CarryoverDepth == 0 && allLanded()) {
		select {
		case err := <-runDone:
			t.Fatalf("Run exited before cancellation: %v (stats %+v)", err, d.Stats())
		case <-deadline:
			t.Fatalf("pipeline never drained: stats %+v, ring %d", d.Stats(), f.mon.WorkloadDepth())
		case <-time.After(5 * time.Millisecond):
		}
	}
	cancel()
	if err := <-runDone; err != context.Canceled {
		t.Errorf("Run returned %v, want context.Canceled", err)
	}

	// Exactly once: each generated statement has exactly one workload row.
	for _, q := range queries {
		got := countRows(t, f.target, fmt.Sprintf("SELECT COUNT(*) FROM %s WHERE hash = %d",
			workloaddb.Workload, int64(monitor.HashStatement(q))))
		if got != 1 {
			t.Errorf("workload rows for %q = %d, want exactly 1", q, got)
		}
	}

	st := d.Stats()
	if flaky.failed.Load() == 0 || st.PollErrors == 0 {
		t.Errorf("no faults were actually injected: %d Exec failures, stats %+v", flaky.failed.Load(), st)
	}
	if st.Polls <= st.PollErrors {
		t.Errorf("no poll ever succeeded: %+v", st)
	}
	if st.AlertErrors == 0 {
		t.Error("broken alert never counted")
	}
	if healthyFired.Load() == 0 {
		t.Error("healthy alert starved by the broken one")
	}
	if st.CarryoverDrops != 0 {
		t.Errorf("CarryoverDrops = %d, want 0 (cap never reached in this scenario)", st.CarryoverDrops)
	}

	// The daemon's health counters made it into the persisted series.
	if got := countRows(t, f.target,
		"SELECT COUNT(*) FROM "+workloaddb.Statistics+" WHERE poll_errors > 0"); got == 0 {
		t.Error("poll_errors never recorded in ws_statistics")
	}
}
