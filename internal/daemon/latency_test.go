package daemon

import (
	"fmt"
	"testing"

	"repro/internal/workloaddb"
)

// TestPollPersistsLatencyHistograms: each poll appends the cumulative
// latency histograms to ws_latency, one row per non-empty bucket per
// scope.
func TestPollPersistsLatencyHistograms(t *testing.T) {
	f := newFixture(t)
	d, err := New(Config{Source: f.source, Mon: f.mon, Target: f.target})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		exec(t, f.sess, fmt.Sprintf("SELECT v FROM t WHERE id = %d", i))
	}
	executed := f.mon.TotalStatements()
	if err := d.Poll(); err != nil {
		t.Fatal(err)
	}

	ws := f.target.NewSession()
	defer ws.Close()
	res := exec(t, ws, "SELECT scope, bucket, lo_ns, hi_ns, bucket_count FROM "+workloaddb.Latency)
	if len(res.Rows) == 0 {
		t.Fatal("ws_latency is empty after a poll")
	}
	totals := map[string]int64{}
	for _, r := range res.Rows {
		scope := r[0].S
		if scope != "wall" && scope != "opt" {
			t.Errorf("unexpected scope %q", scope)
		}
		if r[2].I >= r[3].I {
			t.Errorf("bucket %d: lo %d >= hi %d", r[1].I, r[2].I, r[3].I)
		}
		if r[4].I <= 0 {
			t.Errorf("bucket %d: zero-count rows must not be persisted", r[1].I)
		}
		totals[scope] += r[4].I
	}
	// Counts are cumulative since monitor start, so the wall total is
	// exactly every monitored execution up to the poll.
	if totals["wall"] != executed {
		t.Errorf("wall total = %d, want %d", totals["wall"], executed)
	}

	// A second poll appends a second, larger cumulative snapshot.
	exec(t, f.sess, "SELECT COUNT(*) FROM t")
	if err := d.Poll(); err != nil {
		t.Fatal(err)
	}
	res = exec(t, ws, "SELECT COUNT(*) FROM "+workloaddb.Latency)
	if int(res.Rows[0][0].I) <= len(totals) {
		t.Errorf("second poll did not append: %d rows", res.Rows[0][0].I)
	}
	res = exec(t, ws, "SELECT ts_us FROM "+workloaddb.Latency+" GROUP BY ts_us")
	if len(res.Rows) != 2 {
		t.Errorf("distinct poll timestamps = %d, want 2", len(res.Rows))
	}
}
