// Package daemon implements the storage daemon: a lightweight
// background collector that periodically reads the monitoring data out
// of the DBMS and appends it, timestamped, to the persistent workload
// database. Disk is touched only on the daemon's schedule — "disk
// accesses are performed only every few minutes instead of with every
// executed statement".
//
// The daemon also implements the paper's active alerting: after each
// poll it evaluates user-defined threshold rules (plain SQL against
// the workload DB or the live IMA tables) and notifies the DBA.
//
// # Failure model
//
// The daemon must run unattended for the full retention window, so the
// collection pipeline is fault-tolerant end to end:
//
//   - Errors are classified transient or fatal. Everything the target
//     database can produce at runtime is treated as transient; only
//     errors wrapped with Fatal (or context cancellation) terminate
//     Run. Transient poll failures are retried with capped exponential
//     backoff instead of killing the loop.
//   - Workload entries drained from the monitor are never discarded on
//     an insert failure: the un-persisted suffix is requeued on a
//     bounded in-memory carryover buffer and flushed first on the next
//     attempt, so each drained execution lands exactly once. When the
//     carryover is full the daemon stops draining and lets the monitor
//     ring wrap (bounded, counted loss) instead of growing an
//     unbounded queue.
//   - Alert evaluation is isolated: one bad alert query or operator is
//     logged and counted (AlertErrors) without aborting the poll or
//     starving the remaining alerts.
package daemon

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/ima"
	"repro/internal/monitor"
	"repro/internal/sqltypes"
	"repro/internal/workloaddb"
)

// DefaultInterval matches the prototype's polling cadence: "collecting
// up to 1000 statements within an interval of 30 seconds has proven to
// be enough".
const DefaultInterval = 30 * time.Second

// DefaultRetention keeps "the workload of a typical work week".
const DefaultRetention = 7 * 24 * time.Hour

// Defaults for the fault-tolerance knobs.
const (
	// DefaultRetryBase is the first retry delay after a transient poll
	// failure; each consecutive failure doubles it up to RetryMax.
	DefaultRetryBase = 250 * time.Millisecond
	// DefaultRetryMax caps the exponential backoff.
	DefaultRetryMax = 30 * time.Second
	// DefaultCarryoverCap bounds the in-memory requeue buffer for
	// drained-but-unpersisted workload entries.
	DefaultCarryoverCap = 65536
	// DefaultRefCacheCap bounds the reference dedup set.
	DefaultRefCacheCap = 100000
)

// FatalError wraps an error that must terminate Run. Everything else
// is transient: Run logs it, backs off and retries.
type FatalError struct{ Err error }

func (e *FatalError) Error() string { return "daemon: fatal: " + e.Err.Error() }
func (e *FatalError) Unwrap() error { return e.Err }

// Fatal marks err as fatal to the daemon loop.
func Fatal(err error) error {
	if err == nil {
		return nil
	}
	return &FatalError{Err: err}
}

// IsFatal reports whether err (anywhere in its tree) demands that the
// daemon loop stop: an explicit FatalError or a context cancellation.
func IsFatal(err error) bool {
	var fe *FatalError
	return errors.As(err, &fe) ||
		errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Alert is a threshold rule evaluated after every poll. Query must
// return at least one row; its first column is compared against
// Threshold with Op. Matching fires Action.
type Alert struct {
	Name      string
	Query     string // run against the source DB (IMA) — plain SQL
	Op        string // ">", ">=", "<", "<=", "="
	Threshold float64
	Action    func(Event)
}

// Event describes a fired alert.
type Event struct {
	Alert string
	Value float64
	When  time.Time
}

// Config wires a daemon.
type Config struct {
	// Source is the monitored database (must have IMA registered).
	Source *engine.DB
	// Mon is the source's monitor; the daemon drains its workload ring
	// directly — the in-core collection variant of §IV-B.
	Mon *monitor.Monitor
	// Target is the workload database.
	Target *engine.DB
	// Interval between polls (default 30 s).
	Interval time.Duration
	// Retention window (default 7 days).
	Retention time.Duration
	// Alerts to evaluate after each poll.
	Alerts []Alert
	// FlushOnFull registers the daemon with the monitor's buffer-full
	// signal: when the workload ring nears capacity between ticks, the
	// Run loop polls immediately instead of letting the ring wrap —
	// the in-core collection trigger the paper sketches in §IV-B.
	FlushOnFull bool
	// RetryBase is the first backoff delay after a transient poll
	// failure (default DefaultRetryBase).
	RetryBase time.Duration
	// RetryMax caps the backoff (default DefaultRetryMax).
	RetryMax time.Duration
	// CarryoverCap bounds the requeue buffer for drained workload
	// entries whose insert failed (default DefaultCarryoverCap).
	CarryoverCap int
	// RefCacheCap bounds the reference dedup set; the oldest keys are
	// evicted first (default DefaultRefCacheCap).
	RefCacheCap int
	// Actions, when set, returns the analyzer applier's audit trail;
	// rows with Seq beyond the daemon's watermark are persisted into
	// ws_actions each poll.
	Actions func() []ima.ActionRow
	// ApplyFailures, when set, supplies the apply_failures column of
	// ws_statistics (the analyzer's count of recommendations whose
	// execution failed).
	ApplyFailures func() int64
	// Flagger, when set, runs one adaptive-monitoring evaluation per
	// poll: statements whose interval tail latency misbehaves are
	// flagged into phase-2 wait attribution, and stale flags expire.
	// The resulting breakdowns are persisted into ws_waits.
	Flagger *monitor.Flagger
	// DisableVacuum turns off the MVCC garbage-collection pass that
	// otherwise rides every poll (one engine.Vacuum over the source).
	DisableVacuum bool
	// Logf receives diagnostics: transient poll failures, retry
	// scheduling, alert errors. nil discards them.
	Logf func(format string, args ...any)
	// Now overrides the clock (tests).
	Now func() time.Time
}

// Stats reports daemon activity.
type Stats struct {
	Polls        int64
	RowsAppended int64
	RowsPruned   int64
	AlertsFired  int64
	// LastPoll is the start time of the most recent poll attempt; the
	// zero time until the first poll runs.
	LastPoll time.Time

	// Fault-tolerance counters.
	PollErrors     int64 // polls that returned a (transient) error
	Retries        int64 // backoff-scheduled retry polls executed by Run
	AlertErrors    int64 // alert evaluations that failed (query or operator)
	CarryoverDepth int64 // drained workload entries awaiting re-insert
	CarryoverDrops int64 // carryover entries dropped at the cap (oldest first)
}

// execTarget is the daemon's write surface to the workload DB. In
// production it is a fresh engine session per poll; tests substitute a
// fault-injecting wrapper to exercise the recovery paths.
type execTarget interface {
	Exec(sql string) (*engine.Result, error)
	Close()
}

// Daemon persists monitoring data on a schedule.
type Daemon struct {
	cfg       Config
	newTarget func() execTarget
	logf      func(format string, args ...any)
	carryCap  int

	mu        sync.Mutex
	refs      refDedup // reference rows already persisted, bounded FIFO
	lastPrune time.Time
	prevPoll  time.Time // statements unchanged since then are skipped
	carryover []monitor.WorkloadEntry

	polls       atomic.Int64
	appended    atomic.Int64
	pruned      atomic.Int64
	fired       atomic.Int64
	lastPoll    atomic.Int64 // unix micro; 0 = never polled
	pollErrors  atomic.Int64
	retries     atomic.Int64
	alertErrors atomic.Int64
	carryDepth  atomic.Int64
	carryDrops  atomic.Int64
	actionSeq   atomic.Int64 // highest ws_actions Seq persisted

	fullSignal chan struct{}
}

// New validates the config and builds a daemon.
func New(cfg Config) (*Daemon, error) {
	if cfg.Source == nil || cfg.Target == nil || cfg.Mon == nil {
		return nil, fmt.Errorf("daemon: Source, Target and Mon are required")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultInterval
	}
	if cfg.Retention <= 0 {
		cfg.Retention = DefaultRetention
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = DefaultRetryBase
	}
	if cfg.RetryMax < cfg.RetryBase {
		cfg.RetryMax = DefaultRetryMax
		if cfg.RetryMax < cfg.RetryBase {
			cfg.RetryMax = cfg.RetryBase
		}
	}
	if cfg.CarryoverCap <= 0 {
		cfg.CarryoverCap = DefaultCarryoverCap
	}
	if cfg.RefCacheCap <= 0 {
		cfg.RefCacheCap = DefaultRefCacheCap
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if err := workloaddb.EnsureSchema(cfg.Target); err != nil {
		return nil, err
	}
	d := &Daemon{
		cfg:      cfg,
		logf:     cfg.Logf,
		carryCap: cfg.CarryoverCap,
		refs:     newRefDedup(cfg.RefCacheCap),
	}
	d.newTarget = func() execTarget { return cfg.Target.NewSession() }
	if cfg.FlushOnFull {
		d.fullSignal = make(chan struct{}, 1)
		cfg.Mon.SetFullHandler(func() {
			select {
			case d.fullSignal <- struct{}{}:
			default:
			}
		})
	}
	return d, nil
}

// Run polls until the context is cancelled: on the configured interval
// and, with FlushOnFull, whenever the monitor signals a near-full
// workload ring. A transient poll failure does not terminate the loop;
// it schedules a retry with capped exponential backoff (interval ticks
// and full signals are absorbed while a retry is pending — draining
// more entries into a failing pipeline would only grow the carryover).
// Run returns only on context cancellation or a fatal error.
func (d *Daemon) Run(ctx context.Context) error {
	ticker := time.NewTicker(d.cfg.Interval)
	defer ticker.Stop()
	full := d.fullSignal // nil (blocks forever) unless FlushOnFull

	backoff := d.cfg.RetryBase
	var retryTimer *time.Timer
	var retryC <-chan time.Time // nil unless a retry is pending
	defer func() {
		if retryTimer != nil {
			retryTimer.Stop()
		}
	}()

	attempt := func(isRetry bool) error {
		if isRetry {
			d.retries.Add(1)
		}
		err := d.Poll()
		if err == nil {
			backoff = d.cfg.RetryBase
			retryC = nil
			return nil
		}
		if ctx.Err() != nil {
			// Cancelled mid-poll: report the cancellation, not whatever
			// transient error the dying poll produced.
			return ctx.Err()
		}
		if IsFatal(err) {
			return err
		}
		d.logf("daemon: poll failed (retrying in %s): %v", backoff, err)
		retryTimer = time.NewTimer(backoff)
		retryC = retryTimer.C
		backoff *= 2
		if backoff > d.cfg.RetryMax {
			backoff = d.cfg.RetryMax
		}
		return nil
	}

	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
			if retryC != nil {
				continue // the pending retry drives recovery
			}
			if err := attempt(false); err != nil {
				return err
			}
		case <-full:
			if retryC != nil {
				continue
			}
			if err := attempt(false); err != nil {
				return err
			}
		case <-retryC:
			if err := attempt(true); err != nil {
				return err
			}
		}
	}
}

// Stats returns a snapshot of daemon counters.
func (d *Daemon) Stats() Stats {
	var last time.Time
	if us := d.lastPoll.Load(); us != 0 {
		last = time.UnixMicro(us)
	}
	return Stats{
		Polls:          d.polls.Load(),
		RowsAppended:   d.appended.Load(),
		RowsPruned:     d.pruned.Load(),
		AlertsFired:    d.fired.Load(),
		LastPoll:       last,
		PollErrors:     d.pollErrors.Load(),
		Retries:        d.retries.Load(),
		AlertErrors:    d.alertErrors.Load(),
		CarryoverDepth: d.carryDepth.Load(),
		CarryoverDrops: d.carryDrops.Load(),
	}
}

// Poll performs one collection cycle: flush carried-over and freshly
// drained workload entries, snapshot the remaining IMA tables, append
// everything to the workload DB with the poll timestamp, prune expired
// rows once per retention hour, then evaluate alerts.
//
// A failing section does not abort the cycle: each append runs
// independently, failed workload inserts are requeued on the carryover
// buffer, and the errors are joined into the return value for Run to
// back off on. Alert evaluation never contributes an error.
func (d *Daemon) Poll() error {
	now := d.cfg.Now()
	ts := now.UnixMicro()
	d.polls.Add(1)
	d.lastPoll.Store(ts)

	target := d.newTarget()
	defer target.Close()

	var errs []error

	// 1. Workload entries: carryover from failed polls first, then the
	// fresh drain — each drained execution lands exactly once.
	if err := d.flushWorkload(target, ts); err != nil {
		errs = append(errs, err)
	}

	// 2. Snapshot-style tables via the monitor's statement-side
	// snapshot (one consistent cut of statements, references and
	// frequencies; the workload was already drained above) and the
	// catalog. Statement rows are appended only when they changed since
	// the previous poll ("the newest data").
	snap := d.cfg.Mon.SnapshotStatementSide()
	d.mu.Lock()
	since := d.prevPoll
	d.mu.Unlock()
	if err := d.appendStatements(target, ts, snap, since); err != nil {
		errs = append(errs, err)
	} else {
		// Advance the changed-since watermark only when the rows
		// landed, so statements touched during an outage are retried.
		d.mu.Lock()
		if now.After(d.prevPoll) {
			d.prevPoll = now
		}
		d.mu.Unlock()
	}
	if err := d.appendReferences(target, ts, snap); err != nil {
		errs = append(errs, err)
	}
	if err := d.appendObjectTables(target, ts, snap); err != nil {
		errs = append(errs, err)
	}
	if err := d.appendStatistics(target, ts); err != nil {
		errs = append(errs, err)
	}
	if err := d.appendLatency(target, ts); err != nil {
		errs = append(errs, err)
	}
	if err := d.appendActions(target, ts); err != nil {
		errs = append(errs, err)
	}

	// 2b. Adaptive monitoring: evaluate the flagging policy, then
	// persist the phase-2 wait breakdowns of the current flag set.
	if d.cfg.Flagger != nil {
		if flagged, expired := d.cfg.Flagger.Evaluate(now); flagged > 0 || expired > 0 {
			d.logf("daemon: flagger: %d flagged, %d expired", flagged, expired)
		}
	}
	if err := d.appendWaits(target, ts); err != nil {
		errs = append(errs, err)
	}

	// 2c. MVCC garbage collection rides the poll — "disk accesses on
	// the daemon's schedule" extends naturally to version reclamation —
	// then the snapshot-isolation health counters are persisted.
	if !d.cfg.DisableVacuum {
		if vs, err := d.cfg.Source.Vacuum(); err != nil {
			errs = append(errs, fmt.Errorf("daemon: vacuum: %w", err))
		} else if vs.Reclaimed > 0 || vs.Cleared > 0 || vs.Retired > 0 {
			d.logf("daemon: vacuum: reclaimed %d, cleared %d stamps, retired %d txn ids",
				vs.Reclaimed, vs.Cleared, vs.Retired)
		}
	}
	if err := d.appendMvcc(target, ts); err != nil {
		errs = append(errs, err)
	}

	// 3. Retention pruning, at most once per hour of wall time; a
	// failed prune is retried next poll (lastPrune advances on success).
	d.mu.Lock()
	doPrune := now.Sub(d.lastPrune) >= time.Hour || d.lastPrune.IsZero()
	d.mu.Unlock()
	if doPrune {
		if n, err := workloaddb.Prune(d.cfg.Target, d.cfg.Retention, now); err != nil {
			errs = append(errs, err)
		} else {
			d.pruned.Add(n)
			d.mu.Lock()
			d.lastPrune = now
			d.mu.Unlock()
		}
	}

	// 4. Alerts — isolated; failures are counted, never propagated.
	d.evaluateAlerts(now)

	if len(errs) > 0 {
		d.pollErrors.Add(1)
		return errors.Join(errs...)
	}
	return nil
}

// flushWorkload persists the carryover buffer plus a fresh drain of
// the monitor's workload ring. On failure the un-persisted suffix is
// requeued (chunks that were Exec'd before the failure are not — a
// failed Exec applies nothing, so the retry cannot duplicate rows).
// When the carryover is already at capacity the ring is deliberately
// not drained: entries stay in the monitor, where wraparound drops
// oldest-first and is counted by Monitor.WorkloadDropped.
func (d *Daemon) flushWorkload(x execTarget, ts int64) error {
	d.mu.Lock()
	pending := d.carryover
	d.carryover = nil
	d.mu.Unlock()

	if len(pending) < d.carryCap {
		pending = append(pending, d.cfg.Mon.DrainWorkload()...)
	}
	if len(pending) == 0 {
		return nil
	}
	rows := make([]sqltypes.Row, len(pending))
	for i, w := range pending {
		rows[i] = tsRow(ts, ima.WorkloadRow(w))
	}
	n, err := d.insertBatch(x, workloaddb.Workload, rows)
	if err == nil {
		d.mu.Lock()
		d.carryDepth.Store(int64(len(d.carryover)))
		d.mu.Unlock()
		return nil
	}

	rest := pending[n:]
	d.mu.Lock()
	// A concurrent Poll may have requeued in the meantime; append and
	// trim to the cap, dropping oldest first.
	d.carryover = append(d.carryover, rest...)
	if drop := len(d.carryover) - d.carryCap; drop > 0 {
		d.carryDrops.Add(int64(drop))
		d.carryover = append([]monitor.WorkloadEntry(nil), d.carryover[drop:]...)
	}
	depth := len(d.carryover)
	d.carryDepth.Store(int64(depth))
	d.mu.Unlock()
	return fmt.Errorf("daemon: workload append (%d entries requeued): %w", depth, err)
}

// insertBatch appends rows to a workload table in chunks. It returns
// the number of rows successfully appended — on error, a strict prefix
// of rows (the chunks whose Exec succeeded before the failure).
func (d *Daemon) insertBatch(x execTarget, table string, rows []sqltypes.Row) (int, error) {
	const chunk = 200
	for start := 0; start < len(rows); start += chunk {
		end := start + chunk
		if end > len(rows) {
			end = len(rows)
		}
		var b strings.Builder
		b.WriteString("INSERT INTO ")
		b.WriteString(table)
		b.WriteString(" VALUES ")
		for i, row := range rows[start:end] {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteByte('(')
			for j, v := range row {
				if j > 0 {
					b.WriteByte(',')
				}
				b.WriteString(v.SQLLiteral())
			}
			b.WriteByte(')')
		}
		if _, err := x.Exec(b.String()); err != nil {
			return start, fmt.Errorf("daemon: append to %s: %w", table, err)
		}
		d.appended.Add(int64(end - start))
	}
	return len(rows), nil
}

func tsRow(ts int64, rest sqltypes.Row) sqltypes.Row {
	return append(sqltypes.Row{sqltypes.NewInt(ts)}, rest...)
}

func (d *Daemon) appendStatements(x execTarget, ts int64, snap monitor.Snapshot, since time.Time) error {
	rows := make([]sqltypes.Row, 0, len(snap.Statements))
	for _, st := range snap.Statements {
		if !since.IsZero() && st.LastSeen.Before(since) {
			continue
		}
		text := sqltypes.TruncateUTF8(st.Text, workloaddb.StatementTextMax)
		rows = append(rows, tsRow(ts, sqltypes.Row{
			sqltypes.NewInt(int64(st.Hash)),
			sqltypes.NewText(text),
			sqltypes.NewText(st.Kind),
			sqltypes.NewInt(st.Frequency),
			sqltypes.NewInt(st.FirstSeen.UnixMicro()),
			sqltypes.NewInt(st.LastSeen.UnixMicro()),
		}))
	}
	_, err := d.insertBatch(x, workloaddb.Statements, rows)
	return err
}

// appendReferences inserts reference rows not yet persisted. Keys are
// committed to the dedup set only after their rows actually landed, so
// an insert failure leaves them eligible for the next poll instead of
// silently losing them forever.
func (d *Daemon) appendReferences(x execTarget, ts int64, snap monitor.Snapshot) error {
	var rows []sqltypes.Row
	var keys []string
	batch := map[string]struct{}{} // dedup within this snapshot
	d.mu.Lock()
	for _, r := range snap.References {
		key := fmt.Sprintf("%d|%d|%s", r.Hash, r.Type, r.Name)
		if d.refs.has(key) {
			continue
		}
		if _, dup := batch[key]; dup {
			continue
		}
		batch[key] = struct{}{}
		keys = append(keys, key)
		rows = append(rows, tsRow(ts, sqltypes.Row{
			sqltypes.NewInt(int64(r.Hash)),
			sqltypes.NewText(r.Type.String()),
			sqltypes.NewText(r.Name),
			sqltypes.NewText(r.Table),
		}))
	}
	d.mu.Unlock()
	n, err := d.insertBatch(x, workloaddb.References, rows)
	if n > 0 {
		d.mu.Lock()
		for _, k := range keys[:n] {
			d.refs.add(k)
		}
		d.mu.Unlock()
	}
	return err
}

// appendObjectTables copies the per-object frequency tables.
func (d *Daemon) appendObjectTables(x execTarget, ts int64, snap monitor.Snapshot) error {
	cat := d.cfg.Source.Catalog()
	var trows []sqltypes.Row
	for _, t := range cat.Tables() {
		tn := strings.ToLower(t.Name)
		st := d.cfg.Source.TableState(t.Name)
		trows = append(trows, tsRow(ts, sqltypes.Row{
			sqltypes.NewText(tn),
			sqltypes.NewInt(snap.TableFreq[tn]),
			sqltypes.NewText(string(t.Structure)),
			sqltypes.NewInt(int64(st.Pages)),
			sqltypes.NewInt(int64(st.OverflowPages)),
			sqltypes.NewInt(st.Rows),
		}))
	}
	if _, err := d.insertBatch(x, workloaddb.Tables, trows); err != nil {
		return err
	}

	var arows []sqltypes.Row
	for _, t := range cat.Tables() {
		tn := strings.ToLower(t.Name)
		for _, c := range t.Schema.Columns {
			attr := tn + "." + strings.ToLower(c.Name)
			if snap.AttrFreq[attr] == 0 {
				continue // only attributes the workload touched
			}
			hasHist := int64(0)
			if cat.Histogram(t.Name, c.Name) != nil {
				hasHist = 1
			}
			arows = append(arows, tsRow(ts, sqltypes.Row{
				sqltypes.NewText(attr),
				sqltypes.NewText(tn),
				sqltypes.NewInt(snap.AttrFreq[attr]),
				sqltypes.NewInt(hasHist),
			}))
		}
	}
	if _, err := d.insertBatch(x, workloaddb.Attributes, arows); err != nil {
		return err
	}

	var irows []sqltypes.Row
	names := make([]string, 0, len(snap.IndexFreq))
	for name := range snap.IndexFreq {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		tableName := ""
		isVirtual := int64(0)
		if ix := cat.Index(name); ix != nil {
			tableName = strings.ToLower(ix.Table)
			if ix.Virtual {
				isVirtual = 1
			}
		} else if strings.HasSuffix(name, ".primary") {
			tableName = strings.TrimSuffix(name, ".primary")
		}
		irows = append(irows, tsRow(ts, sqltypes.Row{
			sqltypes.NewText(name),
			sqltypes.NewText(tableName),
			sqltypes.NewInt(snap.IndexFreq[name]),
			sqltypes.NewInt(isVirtual),
		}))
	}
	_, err := d.insertBatch(x, workloaddb.Indexes, irows)
	return err
}

func (d *Daemon) appendStatistics(x execTarget, ts int64) error {
	st := d.cfg.Source.Stats()
	row := tsRow(ts, sqltypes.Row{
		sqltypes.NewInt(st.CurrentSessions),
		sqltypes.NewInt(st.PeakSessions),
		sqltypes.NewInt(st.Statements),
		sqltypes.NewInt(st.LocksHeld),
		sqltypes.NewInt(st.LockWaits),
		sqltypes.NewInt(st.Deadlocks),
		sqltypes.NewInt(st.CacheHits),
		sqltypes.NewInt(st.CacheMisses),
		sqltypes.NewInt(st.DiskReads),
		sqltypes.NewInt(st.DiskWrites),
		sqltypes.NewInt(st.DBBytes),
		// The daemon's own health counters, so collector degradation is
		// visible (and trendable) in the persisted series.
		sqltypes.NewInt(d.pollErrors.Load()),
		sqltypes.NewInt(d.retries.Load()),
		sqltypes.NewInt(d.carryDepth.Load()),
		sqltypes.NewInt(d.alertErrors.Load()),
		// Buffer-manager columns, appended after the health counters to
		// keep older workload databases positionally compatible.
		sqltypes.NewInt(st.CacheEvictions),
		sqltypes.NewInt(st.CacheResident),
		sqltypes.NewInt(st.PinWaits),
		// WAL/recovery columns, appended last for the same positional
		// compatibility reason.
		sqltypes.NewInt(st.WALBytes),
		sqltypes.NewInt(st.WALFsyncs),
		sqltypes.NewInt(st.RedoRecords),
		sqltypes.NewInt(st.RedoNanos),
		// Autonomous-tuning column, appended last (positional
		// compatibility).
		sqltypes.NewInt(d.applyFailures()),
		// Morsel-parallelism columns, appended after for the same
		// positional-compatibility reason.
		sqltypes.NewInt(st.ParallelQueries),
		sqltypes.NewInt(st.MorselsDispatched),
		sqltypes.NewInt(st.ParallelWorkerNanos),
	})
	_, err := d.insertBatch(x, workloaddb.Statistics, []sqltypes.Row{row})
	return err
}

// applyFailures reads the analyzer hook, tolerating an unwired config.
func (d *Daemon) applyFailures() int64 {
	if d.cfg.ApplyFailures == nil {
		return 0
	}
	return d.cfg.ApplyFailures()
}

// appendActions persists new apply-state-machine audit rows (Seq beyond
// the watermark) into ws_actions. The watermark advances only past rows
// that actually landed, so an insert failure retries them next poll.
func (d *Daemon) appendActions(x execTarget, ts int64) error {
	if d.cfg.Actions == nil {
		return nil
	}
	watermark := d.actionSeq.Load()
	var rows []sqltypes.Row
	var seqs []int64
	for _, r := range d.cfg.Actions() {
		if r.Seq <= watermark {
			continue
		}
		seqs = append(seqs, r.Seq)
		rows = append(rows, tsRow(ts, sqltypes.Row{
			sqltypes.NewInt(r.Seq),
			sqltypes.NewInt(r.ActionID),
			sqltypes.NewText(r.Kind),
			sqltypes.NewText(r.Target),
			sqltypes.NewText(sqltypes.TruncateUTF8(r.SQL, workloaddb.StatementTextMax)),
			sqltypes.NewText(r.State),
			sqltypes.NewInt(r.Baseline),
			sqltypes.NewInt(r.Observed),
			sqltypes.NewFloat(r.DeltaPct),
			sqltypes.NewInt(r.Samples),
			sqltypes.NewInt(r.AtUs),
			sqltypes.NewText(sqltypes.TruncateUTF8(r.Detail, workloaddb.StatementTextMax)),
		}))
	}
	if len(rows) == 0 {
		return nil
	}
	n, err := d.insertBatch(x, workloaddb.Actions, rows)
	if n > 0 {
		d.actionSeq.Store(seqs[n-1])
	}
	return err
}

// appendLatency persists one snapshot of the global latency histograms
// (wallclock and optimize time) per poll: one row per non-empty
// bucket, with cumulative counts. The trend analyzer differences
// successive snapshots to compute per-interval quantiles (p99 trends,
// not just means).
func (d *Daemon) appendLatency(x execTarget, ts int64) error {
	wall, opt := d.cfg.Mon.SnapshotLatency()
	var rows []sqltypes.Row
	emit := func(scope string, c *monitor.LatencyCounts) {
		for b, n := range c {
			if n == 0 {
				continue
			}
			lo, hi := monitor.LatencyBucketBounds(b)
			rows = append(rows, tsRow(ts, sqltypes.Row{
				sqltypes.NewText(scope),
				sqltypes.NewInt(int64(b)),
				sqltypes.NewInt(int64(lo)),
				sqltypes.NewInt(int64(hi)),
				sqltypes.NewInt(n),
			}))
		}
	}
	emit("wall", &wall)
	emit("opt", &opt)
	if len(rows) == 0 {
		return nil
	}
	_, err := d.insertBatch(x, workloaddb.Latency, rows)
	return err
}

// appendWaits persists one ws_waits row per flagged statement per
// poll: cumulative wait-class counters (like ws_latency, counter
// semantics — the analyzer differences successive snapshots of the
// same hash). Statements with no committed samples yet are skipped.
func (d *Daemon) appendWaits(x execTarget, ts int64) error {
	flags := d.cfg.Mon.SnapshotFlags()
	var rows []sqltypes.Row
	for _, f := range flags {
		if f.Samples == 0 {
			continue
		}
		rows = append(rows, tsRow(ts, sqltypes.Row{
			sqltypes.NewInt(int64(f.Hash)),
			sqltypes.NewText(sqltypes.TruncateUTF8(f.Text, workloaddb.StatementTextMax)),
			sqltypes.NewText(f.Reason),
			sqltypes.NewInt(f.Samples),
			sqltypes.NewInt(f.Waits.WallNs),
			sqltypes.NewInt(f.Waits.ExecNs),
			sqltypes.NewInt(f.Waits.LockNs),
			sqltypes.NewInt(f.Waits.IONs),
			sqltypes.NewInt(f.Waits.FsyncNs),
			sqltypes.NewInt(f.Waits.PinWaitNs),
		}))
	}
	if len(rows) == 0 {
		return nil
	}
	_, err := d.insertBatch(x, workloaddb.Waits, rows)
	return err
}

// appendMvcc persists one ws_mvcc row per poll with the source's
// snapshot-isolation health counters (mirroring ima_mvcc).
func (d *Daemon) appendMvcc(x execTarget, ts int64) error {
	mv := d.cfg.Source.MvccStats()
	row := tsRow(ts, sqltypes.Row{
		sqltypes.NewInt(mv.TxnBegins),
		sqltypes.NewInt(mv.TxnCommits),
		sqltypes.NewInt(mv.TxnAborts),
		sqltypes.NewInt(mv.WriteConflicts),
		sqltypes.NewInt(mv.InflightTxns),
		sqltypes.NewInt(mv.ActiveSnapshots),
		sqltypes.NewInt(mv.AbortedIDs),
		sqltypes.NewInt(mv.OldestSnapshotNanos),
		sqltypes.NewInt(mv.VacuumRuns),
		sqltypes.NewInt(mv.VacuumReclaimed),
		sqltypes.NewInt(mv.VacuumCleared),
		sqltypes.NewInt(mv.RetiredIDs),
		sqltypes.NewInt(mv.ChainLenP95),
	})
	_, err := d.insertBatch(x, workloaddb.Mvcc, []sqltypes.Row{row})
	return err
}

// evaluateAlerts runs every alert rule, isolating failures: a bad
// query or operator is logged and counted but cannot abort the poll or
// starve the remaining alerts.
func (d *Daemon) evaluateAlerts(now time.Time) {
	if len(d.cfg.Alerts) == 0 {
		return
	}
	s := d.cfg.Source.NewSession()
	defer s.Close()
	for _, a := range d.cfg.Alerts {
		if err := d.evaluateAlert(s, a, now); err != nil {
			d.alertErrors.Add(1)
			d.logf("daemon: alert %q: %v", a.Name, err)
		}
	}
}

func (d *Daemon) evaluateAlert(s *engine.Session, a Alert, now time.Time) error {
	res, err := s.Exec(a.Query)
	if err != nil {
		return err
	}
	if len(res.Rows) == 0 || len(res.Rows[0]) == 0 {
		return nil
	}
	v := res.Rows[0][0].AsFloat()
	fireNow := false
	switch a.Op {
	case ">":
		fireNow = v > a.Threshold
	case ">=":
		fireNow = v >= a.Threshold
	case "<":
		fireNow = v < a.Threshold
	case "<=":
		fireNow = v <= a.Threshold
	case "=":
		fireNow = v == a.Threshold
	default:
		return fmt.Errorf("bad operator %q", a.Op)
	}
	if fireNow {
		d.fired.Add(1)
		if a.Action != nil {
			a.Action(Event{Alert: a.Name, Value: v, When: now})
		}
	}
	return nil
}

// refDedup is a bounded FIFO set over reference keys: it remembers the
// most recently added cap keys and evicts the oldest beyond that.
// Unlike the previous wholesale map reset, eviction forgets only the
// oldest keys, so references persisted recently keep deduplicating
// across polls.
type refDedup struct {
	cap   int
	seen  map[string]struct{}
	order []string // insertion order; entries before head are evicted
	head  int
}

func newRefDedup(cap int) refDedup {
	hint := cap
	if hint > 1024 {
		hint = 1024
	}
	return refDedup{cap: cap, seen: make(map[string]struct{}, hint)}
}

func (r *refDedup) has(key string) bool {
	_, ok := r.seen[key]
	return ok
}

func (r *refDedup) add(key string) {
	if _, ok := r.seen[key]; ok {
		return
	}
	r.seen[key] = struct{}{}
	r.order = append(r.order, key)
	for len(r.seen) > r.cap {
		delete(r.seen, r.order[r.head])
		r.order[r.head] = "" // release the string
		r.head++
	}
	// Compact the evicted prefix once it dominates the slice.
	if r.head > 1024 && r.head > len(r.order)/2 {
		r.order = append([]string(nil), r.order[r.head:]...)
		r.head = 0
	}
}

// len reports the live key count (tests).
func (r *refDedup) len() int { return len(r.seen) }
