// Package daemon implements the storage daemon: a lightweight
// background collector that periodically reads the monitoring data out
// of the DBMS and appends it, timestamped, to the persistent workload
// database. Disk is touched only on the daemon's schedule — "disk
// accesses are performed only every few minutes instead of with every
// executed statement".
//
// The daemon also implements the paper's active alerting: after each
// poll it evaluates user-defined threshold rules (plain SQL against
// the workload DB or the live IMA tables) and notifies the DBA.
package daemon

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/ima"
	"repro/internal/monitor"
	"repro/internal/sqltypes"
	"repro/internal/workloaddb"
)

// DefaultInterval matches the prototype's polling cadence: "collecting
// up to 1000 statements within an interval of 30 seconds has proven to
// be enough".
const DefaultInterval = 30 * time.Second

// DefaultRetention keeps "the workload of a typical work week".
const DefaultRetention = 7 * 24 * time.Hour

// Alert is a threshold rule evaluated after every poll. Query must
// return at least one row; its first column is compared against
// Threshold with Op. Matching fires Action.
type Alert struct {
	Name      string
	Query     string // run against the source DB (IMA) — plain SQL
	Op        string // ">", ">=", "<", "<=", "="
	Threshold float64
	Action    func(Event)
}

// Event describes a fired alert.
type Event struct {
	Alert string
	Value float64
	When  time.Time
}

// Config wires a daemon.
type Config struct {
	// Source is the monitored database (must have IMA registered).
	Source *engine.DB
	// Mon is the source's monitor; the daemon drains its workload ring
	// directly — the in-core collection variant of §IV-B.
	Mon *monitor.Monitor
	// Target is the workload database.
	Target *engine.DB
	// Interval between polls (default 30 s).
	Interval time.Duration
	// Retention window (default 7 days).
	Retention time.Duration
	// Alerts to evaluate after each poll.
	Alerts []Alert
	// FlushOnFull registers the daemon with the monitor's buffer-full
	// signal: when the workload ring nears capacity between ticks, the
	// Run loop polls immediately instead of letting the ring wrap —
	// the in-core collection trigger the paper sketches in §IV-B.
	FlushOnFull bool
	// Now overrides the clock (tests).
	Now func() time.Time
}

// Stats reports daemon activity.
type Stats struct {
	Polls        int64
	RowsAppended int64
	RowsPruned   int64
	AlertsFired  int64
	LastPoll     time.Time
}

// Daemon persists monitoring data on a schedule.
type Daemon struct {
	cfg Config

	mu        sync.Mutex
	seenRefs  map[string]bool // reference rows already persisted
	lastPrune time.Time
	prevPoll  time.Time // statements unchanged since then are skipped

	polls    atomic.Int64
	appended atomic.Int64
	pruned   atomic.Int64
	fired    atomic.Int64
	lastPoll atomic.Int64 // unix micro

	fullSignal chan struct{}
}

// New validates the config and builds a daemon.
func New(cfg Config) (*Daemon, error) {
	if cfg.Source == nil || cfg.Target == nil || cfg.Mon == nil {
		return nil, fmt.Errorf("daemon: Source, Target and Mon are required")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultInterval
	}
	if cfg.Retention <= 0 {
		cfg.Retention = DefaultRetention
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if err := workloaddb.EnsureSchema(cfg.Target); err != nil {
		return nil, err
	}
	d := &Daemon{cfg: cfg, seenRefs: map[string]bool{}}
	if cfg.FlushOnFull {
		d.fullSignal = make(chan struct{}, 1)
		cfg.Mon.SetFullHandler(func() {
			select {
			case d.fullSignal <- struct{}{}:
			default:
			}
		})
	}
	return d, nil
}

// Run polls until the context is cancelled: on the configured interval
// and, with FlushOnFull, whenever the monitor signals a near-full
// workload ring.
func (d *Daemon) Run(ctx context.Context) error {
	ticker := time.NewTicker(d.cfg.Interval)
	defer ticker.Stop()
	full := d.fullSignal // nil (blocks forever) unless FlushOnFull
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
			if err := d.Poll(); err != nil {
				return err
			}
		case <-full:
			if err := d.Poll(); err != nil {
				return err
			}
		}
	}
}

// Stats returns a snapshot of daemon counters.
func (d *Daemon) Stats() Stats {
	return Stats{
		Polls:        d.polls.Load(),
		RowsAppended: d.appended.Load(),
		RowsPruned:   d.pruned.Load(),
		AlertsFired:  d.fired.Load(),
		LastPoll:     time.UnixMicro(d.lastPoll.Load()),
	}
}

// Poll performs one collection cycle: drain the workload ring, snapshot
// the remaining IMA tables, append everything to the workload DB with
// the poll timestamp, prune expired rows once per retention hour, then
// evaluate alerts.
func (d *Daemon) Poll() error {
	now := d.cfg.Now()
	ts := now.UnixMicro()
	d.polls.Add(1)
	d.lastPoll.Store(ts)

	target := d.cfg.Target.NewSession()
	defer target.Close()

	// 1. Workload entries: drained so each execution lands exactly once.
	entries := d.cfg.Mon.DrainWorkload()
	if err := d.appendWorkload(target, ts, entries); err != nil {
		return err
	}

	// 2. Snapshot-style tables via the monitor's statement-side
	// snapshot (one consistent cut of statements, references and
	// frequencies; the workload was already drained above) and the
	// catalog. Statement rows are appended only when they changed since
	// the previous poll ("the newest data").
	snap := d.cfg.Mon.SnapshotStatementSide()
	d.mu.Lock()
	since := d.prevPoll
	d.prevPoll = now
	d.mu.Unlock()
	if err := d.appendStatements(target, ts, snap, since); err != nil {
		return err
	}
	if err := d.appendReferences(target, ts, snap); err != nil {
		return err
	}
	if err := d.appendObjectTables(target, ts, snap); err != nil {
		return err
	}
	if err := d.appendStatistics(target, ts); err != nil {
		return err
	}

	// 3. Retention pruning, at most once per hour of wall time.
	d.mu.Lock()
	doPrune := now.Sub(d.lastPrune) >= time.Hour || d.lastPrune.IsZero()
	if doPrune {
		d.lastPrune = now
	}
	d.mu.Unlock()
	if doPrune {
		n, err := workloaddb.Prune(d.cfg.Target, d.cfg.Retention, now)
		if err != nil {
			return err
		}
		d.pruned.Add(n)
	}

	// 4. Alerts.
	return d.evaluateAlerts(now)
}

// insertBatch appends rows to a workload table in chunks.
func (d *Daemon) insertBatch(s *engine.Session, table string, rows []sqltypes.Row) error {
	const chunk = 200
	for start := 0; start < len(rows); start += chunk {
		end := start + chunk
		if end > len(rows) {
			end = len(rows)
		}
		var b strings.Builder
		b.WriteString("INSERT INTO ")
		b.WriteString(table)
		b.WriteString(" VALUES ")
		for i, row := range rows[start:end] {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteByte('(')
			for j, v := range row {
				if j > 0 {
					b.WriteByte(',')
				}
				b.WriteString(v.SQLLiteral())
			}
			b.WriteByte(')')
		}
		if _, err := s.Exec(b.String()); err != nil {
			return fmt.Errorf("daemon: append to %s: %w", table, err)
		}
		d.appended.Add(int64(end - start))
	}
	return nil
}

func tsRow(ts int64, rest sqltypes.Row) sqltypes.Row {
	return append(sqltypes.Row{sqltypes.NewInt(ts)}, rest...)
}

func (d *Daemon) appendWorkload(s *engine.Session, ts int64, entries []monitor.WorkloadEntry) error {
	rows := make([]sqltypes.Row, 0, len(entries))
	for _, w := range entries {
		rows = append(rows, tsRow(ts, ima.WorkloadRow(w)))
	}
	return d.insertBatch(s, workloaddb.Workload, rows)
}

func (d *Daemon) appendStatements(s *engine.Session, ts int64, snap monitor.Snapshot, since time.Time) error {
	rows := make([]sqltypes.Row, 0, len(snap.Statements))
	for _, st := range snap.Statements {
		if !since.IsZero() && st.LastSeen.Before(since) {
			continue
		}
		text := st.Text
		if len(text) > 500 {
			text = text[:500]
		}
		rows = append(rows, tsRow(ts, sqltypes.Row{
			sqltypes.NewInt(int64(st.Hash)),
			sqltypes.NewText(text),
			sqltypes.NewText(st.Kind),
			sqltypes.NewInt(st.Frequency),
			sqltypes.NewInt(st.FirstSeen.UnixMicro()),
			sqltypes.NewInt(st.LastSeen.UnixMicro()),
		}))
	}
	return d.insertBatch(s, workloaddb.Statements, rows)
}

func (d *Daemon) appendReferences(s *engine.Session, ts int64, snap monitor.Snapshot) error {
	var rows []sqltypes.Row
	d.mu.Lock()
	for _, r := range snap.References {
		key := fmt.Sprintf("%d|%d|%s", r.Hash, r.Type, r.Name)
		if d.seenRefs[key] {
			continue
		}
		d.seenRefs[key] = true
		rows = append(rows, tsRow(ts, sqltypes.Row{
			sqltypes.NewInt(int64(r.Hash)),
			sqltypes.NewText(r.Type.String()),
			sqltypes.NewText(r.Name),
			sqltypes.NewText(r.Table),
		}))
	}
	// Bound the dedup set.
	if len(d.seenRefs) > 100000 {
		d.seenRefs = map[string]bool{}
	}
	d.mu.Unlock()
	return d.insertBatch(s, workloaddb.References, rows)
}

// appendObjectTables copies the per-object frequency tables.
func (d *Daemon) appendObjectTables(s *engine.Session, ts int64, snap monitor.Snapshot) error {
	cat := d.cfg.Source.Catalog()
	var trows []sqltypes.Row
	for _, t := range cat.Tables() {
		tn := strings.ToLower(t.Name)
		st := d.cfg.Source.TableState(t.Name)
		trows = append(trows, tsRow(ts, sqltypes.Row{
			sqltypes.NewText(tn),
			sqltypes.NewInt(snap.TableFreq[tn]),
			sqltypes.NewText(string(t.Structure)),
			sqltypes.NewInt(int64(st.Pages)),
			sqltypes.NewInt(int64(st.OverflowPages)),
			sqltypes.NewInt(st.Rows),
		}))
	}
	if err := d.insertBatch(s, workloaddb.Tables, trows); err != nil {
		return err
	}

	var arows []sqltypes.Row
	for _, t := range cat.Tables() {
		tn := strings.ToLower(t.Name)
		for _, c := range t.Schema.Columns {
			attr := tn + "." + strings.ToLower(c.Name)
			if snap.AttrFreq[attr] == 0 {
				continue // only attributes the workload touched
			}
			hasHist := int64(0)
			if cat.Histogram(t.Name, c.Name) != nil {
				hasHist = 1
			}
			arows = append(arows, tsRow(ts, sqltypes.Row{
				sqltypes.NewText(attr),
				sqltypes.NewText(tn),
				sqltypes.NewInt(snap.AttrFreq[attr]),
				sqltypes.NewInt(hasHist),
			}))
		}
	}
	if err := d.insertBatch(s, workloaddb.Attributes, arows); err != nil {
		return err
	}

	var irows []sqltypes.Row
	names := make([]string, 0, len(snap.IndexFreq))
	for name := range snap.IndexFreq {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		tableName := ""
		isVirtual := int64(0)
		if ix := cat.Index(name); ix != nil {
			tableName = strings.ToLower(ix.Table)
			if ix.Virtual {
				isVirtual = 1
			}
		} else if strings.HasSuffix(name, ".primary") {
			tableName = strings.TrimSuffix(name, ".primary")
		}
		irows = append(irows, tsRow(ts, sqltypes.Row{
			sqltypes.NewText(name),
			sqltypes.NewText(tableName),
			sqltypes.NewInt(snap.IndexFreq[name]),
			sqltypes.NewInt(isVirtual),
		}))
	}
	return d.insertBatch(s, workloaddb.Indexes, irows)
}

func (d *Daemon) appendStatistics(s *engine.Session, ts int64) error {
	st := d.cfg.Source.Stats()
	row := tsRow(ts, sqltypes.Row{
		sqltypes.NewInt(st.CurrentSessions),
		sqltypes.NewInt(st.PeakSessions),
		sqltypes.NewInt(st.Statements),
		sqltypes.NewInt(st.LocksHeld),
		sqltypes.NewInt(st.LockWaits),
		sqltypes.NewInt(st.Deadlocks),
		sqltypes.NewInt(st.CacheHits),
		sqltypes.NewInt(st.CacheMisses),
		sqltypes.NewInt(st.DiskReads),
		sqltypes.NewInt(st.DiskWrites),
		sqltypes.NewInt(st.DBBytes),
	})
	return d.insertBatch(s, workloaddb.Statistics, []sqltypes.Row{row})
}

func (d *Daemon) evaluateAlerts(now time.Time) error {
	if len(d.cfg.Alerts) == 0 {
		return nil
	}
	s := d.cfg.Source.NewSession()
	defer s.Close()
	for _, a := range d.cfg.Alerts {
		res, err := s.Exec(a.Query)
		if err != nil {
			return fmt.Errorf("daemon: alert %q: %w", a.Name, err)
		}
		if len(res.Rows) == 0 || len(res.Rows[0]) == 0 {
			continue
		}
		v := res.Rows[0][0].AsFloat()
		fireNow := false
		switch a.Op {
		case ">":
			fireNow = v > a.Threshold
		case ">=":
			fireNow = v >= a.Threshold
		case "<":
			fireNow = v < a.Threshold
		case "<=":
			fireNow = v <= a.Threshold
		case "=":
			fireNow = v == a.Threshold
		default:
			return fmt.Errorf("daemon: alert %q: bad operator %q", a.Name, a.Op)
		}
		if fireNow {
			d.fired.Add(1)
			if a.Action != nil {
				a.Action(Event{Alert: a.Name, Value: v, When: now})
			}
		}
	}
	return nil
}
