package daemon

import (
	"context"
	"fmt"
	"path/filepath"
	"strings"
	"testing"
	"time"
	"unicode/utf8"

	"repro/internal/engine"
	"repro/internal/ima"
	"repro/internal/monitor"
	"repro/internal/workloaddb"
)

type fixture struct {
	source *engine.DB
	target *engine.DB
	mon    *monitor.Monitor
	sess   *engine.Session
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	dir := t.TempDir()
	mon := monitor.New(monitor.Config{})
	source, err := engine.Open(engine.Config{Dir: filepath.Join(dir, "src"), PoolPages: 256, Monitor: mon})
	if err != nil {
		t.Fatal(err)
	}
	if err := ima.Register(source, mon); err != nil {
		t.Fatal(err)
	}
	target, err := engine.Open(engine.Config{Dir: filepath.Join(dir, "wdb"), PoolPages: 256})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { source.Close(); target.Close() })
	s := source.NewSession()
	t.Cleanup(s.Close)
	exec(t, s, "CREATE TABLE t (id INTEGER PRIMARY KEY, v VARCHAR(16))")
	for i := 0; i < 10; i++ {
		exec(t, s, fmt.Sprintf("INSERT INTO t VALUES (%d, 'x%d')", i, i))
	}
	return &fixture{source: source, target: target, mon: mon, sess: s}
}

func exec(t *testing.T, s *engine.Session, sql string) *engine.Result {
	t.Helper()
	res, err := s.Exec(sql)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	return res
}

func TestNewValidatesConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestPollPersistsWorkload(t *testing.T) {
	f := newFixture(t)
	d, err := New(Config{Source: f.source, Mon: f.mon, Target: f.target})
	if err != nil {
		t.Fatal(err)
	}
	exec(t, f.sess, "SELECT v FROM t WHERE id = 1")
	exec(t, f.sess, "SELECT v FROM t WHERE id = 2")
	if err := d.Poll(); err != nil {
		t.Fatal(err)
	}

	ws := f.target.NewSession()
	defer ws.Close()
	res := exec(t, ws, "SELECT COUNT(*) FROM "+workloaddb.Workload)
	if res.Rows[0][0].I < 2 {
		t.Errorf("workload rows = %v", res.Rows[0][0])
	}
	res = exec(t, ws, "SELECT COUNT(*) FROM "+workloaddb.Statements)
	if res.Rows[0][0].I == 0 {
		t.Error("statements not persisted")
	}
	res = exec(t, ws, "SELECT COUNT(*) FROM "+workloaddb.Statistics)
	if res.Rows[0][0].I != 1 {
		t.Errorf("statistics rows = %v", res.Rows[0][0])
	}
	res = exec(t, ws, "SELECT COUNT(*) FROM "+workloaddb.Tables+" WHERE table_name = 't'")
	if res.Rows[0][0].I != 1 {
		t.Errorf("tables rows = %v", res.Rows[0][0])
	}
	if st := d.Stats(); st.Polls != 1 || st.RowsAppended == 0 {
		t.Errorf("daemon stats: %+v", st)
	}
}

func TestDrainAvoidsDuplicateWorkload(t *testing.T) {
	f := newFixture(t)
	d, _ := New(Config{Source: f.source, Mon: f.mon, Target: f.target})
	exec(t, f.sess, "SELECT v FROM t WHERE id = 1")
	if err := d.Poll(); err != nil {
		t.Fatal(err)
	}
	if err := d.Poll(); err != nil { // no new statements in between
		t.Fatal(err)
	}
	ws := f.target.NewSession()
	defer ws.Close()
	res := exec(t, ws, fmt.Sprintf(
		"SELECT COUNT(*) FROM %s WHERE hash = %d",
		workloaddb.Workload, int64(monitor.HashStatement("SELECT v FROM t WHERE id = 1"))))
	if res.Rows[0][0].I != 1 {
		t.Errorf("workload entry duplicated across polls: %v", res.Rows[0][0])
	}
}

func TestReferencesNotDuplicated(t *testing.T) {
	f := newFixture(t)
	d, _ := New(Config{Source: f.source, Mon: f.mon, Target: f.target})
	exec(t, f.sess, "SELECT v FROM t WHERE id = 1")
	d.Poll()
	exec(t, f.sess, "SELECT v FROM t WHERE id = 1")
	d.Poll()
	ws := f.target.NewSession()
	defer ws.Close()
	// One reference row per (statement, object), not per poll.
	hash := int64(monitor.HashStatement("SELECT v FROM t WHERE id = 1"))
	res := exec(t, ws, fmt.Sprintf(
		"SELECT COUNT(*) FROM %s WHERE obj_type = 'table' AND obj_name = 't' AND hash = %d",
		workloaddb.References, hash))
	if res.Rows[0][0].I != 1 {
		t.Errorf("reference rows = %v, want 1", res.Rows[0][0])
	}
}

func TestRetentionPruning(t *testing.T) {
	f := newFixture(t)
	clock := time.Now()
	d, err := New(Config{
		Source: f.source, Mon: f.mon, Target: f.target,
		Retention: time.Hour,
		Now:       func() time.Time { return clock },
	})
	if err != nil {
		t.Fatal(err)
	}
	exec(t, f.sess, "SELECT v FROM t WHERE id = 1")
	d.Poll()

	ws := f.target.NewSession()
	before := exec(t, ws, "SELECT COUNT(*) FROM "+workloaddb.Statistics).Rows[0][0].I
	ws.Close()
	if before == 0 {
		t.Fatal("nothing persisted")
	}

	// Jump the clock past retention; the next poll prunes.
	clock = clock.Add(3 * time.Hour)
	if err := d.Poll(); err != nil {
		t.Fatal(err)
	}
	ws = f.target.NewSession()
	defer ws.Close()
	res := exec(t, ws, "SELECT MIN(ts_us) FROM "+workloaddb.Statistics)
	min := res.Rows[0][0].I
	cutoff := clock.Add(-time.Hour).UnixMicro()
	if min < cutoff {
		t.Errorf("rows older than retention survive: min=%d cutoff=%d", min, cutoff)
	}
	if d.Stats().RowsPruned == 0 {
		t.Error("nothing pruned")
	}
}

func TestAlerts(t *testing.T) {
	f := newFixture(t)
	var events []Event
	d, err := New(Config{
		Source: f.source, Mon: f.mon, Target: f.target,
		Alerts: []Alert{
			{
				Name:      "too-many-statements",
				Query:     "SELECT statements FROM ima_statistics",
				Op:        ">",
				Threshold: 0,
				Action:    func(e Event) { events = append(events, e) },
			},
			{
				Name:      "never-fires",
				Query:     "SELECT statements FROM ima_statistics",
				Op:        "<",
				Threshold: -1,
				Action:    func(e Event) { t.Error("must not fire") },
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	exec(t, f.sess, "SELECT COUNT(*) FROM t")
	if err := d.Poll(); err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Alert != "too-many-statements" || events[0].Value <= 0 {
		t.Errorf("events: %+v", events)
	}
	if d.Stats().AlertsFired != 1 {
		t.Errorf("AlertsFired = %d", d.Stats().AlertsFired)
	}
}

func TestAlertErrorsAreIsolated(t *testing.T) {
	// One broken alert query and one bad operator must not abort the
	// poll or stop the healthy alert that follows them.
	f := newFixture(t)
	var fired int
	var logged []string
	d, _ := New(Config{
		Source: f.source, Mon: f.mon, Target: f.target,
		Logf: func(format string, args ...any) { logged = append(logged, fmt.Sprintf(format, args...)) },
		Alerts: []Alert{
			{Name: "bad-query", Query: "SELECT nope FROM missing", Op: ">", Threshold: 0},
			{Name: "bad-op", Query: "SELECT statements FROM ima_statistics", Op: "!!", Threshold: 0},
			{
				Name: "healthy", Query: "SELECT statements FROM ima_statistics",
				Op: ">=", Threshold: 0,
				Action: func(Event) { fired++ },
			},
		},
	})
	exec(t, f.sess, "SELECT COUNT(*) FROM t")
	if err := d.Poll(); err != nil {
		t.Fatalf("alert failures aborted the poll: %v", err)
	}
	st := d.Stats()
	if st.AlertErrors != 2 {
		t.Errorf("AlertErrors = %d, want 2", st.AlertErrors)
	}
	if st.PollErrors != 0 {
		t.Errorf("PollErrors = %d, want 0 (alert failures are not poll failures)", st.PollErrors)
	}
	if fired != 1 {
		t.Errorf("healthy alert fired %d times, want 1", fired)
	}
	if len(logged) != 2 {
		t.Errorf("logged %d alert failures, want 2: %q", len(logged), logged)
	}
}

func TestStatsLastPollZeroBeforeFirstPoll(t *testing.T) {
	f := newFixture(t)
	d, _ := New(Config{Source: f.source, Mon: f.mon, Target: f.target})
	if got := d.Stats().LastPoll; !got.IsZero() {
		t.Errorf("LastPoll before any poll = %v, want the zero time", got)
	}
	if err := d.Poll(); err != nil {
		t.Fatal(err)
	}
	if got := d.Stats().LastPoll; got.IsZero() || time.Since(got) > time.Minute {
		t.Errorf("LastPoll after a poll = %v", got)
	}
}

func TestReferenceDedupBoundedEviction(t *testing.T) {
	// The dedup set evicts oldest-first at the cap instead of resetting
	// wholesale, so recently persisted references stay deduplicated.
	r := newRefDedup(4)
	for _, k := range []string{"a", "b", "c", "d"} {
		r.add(k)
	}
	if r.len() != 4 {
		t.Fatalf("len = %d", r.len())
	}
	r.add("e") // evicts "a", the oldest
	if r.len() != 4 {
		t.Errorf("len after eviction = %d, want 4", r.len())
	}
	for _, k := range []string{"b", "c", "d", "e"} {
		if !r.has(k) {
			t.Errorf("recent key %q evicted", k)
		}
	}
	if r.has("a") {
		t.Error("oldest key survived past the cap")
	}
	r.add("e") // re-adding a live key must not grow or evict
	if r.len() != 4 || !r.has("b") {
		t.Errorf("re-add disturbed the set: len=%d has(b)=%v", r.len(), r.has("b"))
	}
}

func TestReferencesDedupAcrossEviction(t *testing.T) {
	// End to end: with a small cap, a reference seen on every poll is
	// still written only once as long as it stays within the window.
	f := newFixture(t)
	d, _ := New(Config{Source: f.source, Mon: f.mon, Target: f.target, RefCacheCap: 64})
	for i := 0; i < 3; i++ {
		exec(t, f.sess, "SELECT v FROM t WHERE id = 1")
		if err := d.Poll(); err != nil {
			t.Fatal(err)
		}
	}
	ws := f.target.NewSession()
	defer ws.Close()
	hash := int64(monitor.HashStatement("SELECT v FROM t WHERE id = 1"))
	res := exec(t, ws, fmt.Sprintf(
		"SELECT COUNT(*) FROM %s WHERE obj_type = 'table' AND obj_name = 't' AND hash = %d",
		workloaddb.References, hash))
	if res.Rows[0][0].I != 1 {
		t.Errorf("reference rows = %v, want 1", res.Rows[0][0])
	}
}

func TestStatementTextTruncatedOnRuneBoundary(t *testing.T) {
	f := newFixture(t)
	d, _ := New(Config{Source: f.source, Mon: f.mon, Target: f.target})
	// Build a statement whose text exceeds the 512-byte bound with a
	// 2-byte rune straddling the cut point.
	pad := strings.Repeat("é", 400) // 800 bytes of 2-byte runes
	sql := "SELECT v FROM t WHERE v = '" + pad + "'"
	if len(sql) <= workloaddb.StatementTextMax {
		t.Fatalf("test statement too short: %d bytes", len(sql))
	}
	exec(t, f.sess, sql)
	if err := d.Poll(); err != nil {
		t.Fatal(err)
	}
	ws := f.target.NewSession()
	defer ws.Close()
	res := exec(t, ws, fmt.Sprintf("SELECT query_text FROM %s WHERE hash = %d",
		workloaddb.Statements, int64(monitor.HashStatement(sql))))
	if len(res.Rows) == 0 {
		t.Fatal("long statement not persisted")
	}
	text := res.Rows[0][0].S
	if len(text) > workloaddb.StatementTextMax {
		t.Errorf("stored text is %d bytes, max %d", len(text), workloaddb.StatementTextMax)
	}
	if !utf8.ValidString(text) {
		t.Errorf("stored text is invalid UTF-8 (rune split at the cut): %q", text[len(text)-4:])
	}
	if !strings.HasPrefix(sql, text) {
		t.Error("stored text is not a prefix of the statement")
	}
}

func TestRunLoop(t *testing.T) {
	f := newFixture(t)
	d, _ := New(Config{
		Source: f.source, Mon: f.mon, Target: f.target,
		Interval: 10 * time.Millisecond,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	exec(t, f.sess, "SELECT COUNT(*) FROM t")
	err := d.Run(ctx)
	if err != context.DeadlineExceeded {
		t.Fatalf("Run returned %v", err)
	}
	if d.Stats().Polls < 2 {
		t.Errorf("polls = %d", d.Stats().Polls)
	}
}

func TestGrowthModel(t *testing.T) {
	// The paper: 33 statements/s → ≈28 MB/h, capped ≈4.7 GB at 7 days.
	g := workloaddb.GrowthModel{
		StatementsPerSecond: 33,
		BytesPerWorkloadRow: 28e6 / 3600.0 / 33, // back-solved from the paper
		Retention:           7 * 24 * time.Hour,
	}
	perHour := g.BytesPerHour()
	if perHour < 27e6 || perHour > 29e6 {
		t.Errorf("BytesPerHour = %g, want ≈28 MB", perHour)
	}
	cap := g.CapBytes()
	if cap < 4.5e9 || cap > 4.9e9 {
		t.Errorf("CapBytes = %g, want ≈4.7 GB", cap)
	}
}

func TestFlushOnFull(t *testing.T) {
	dir := t.TempDir()
	mon := monitor.New(monitor.Config{WorkloadCapacity: 20})
	source, err := engine.Open(engine.Config{Dir: filepath.Join(dir, "src"), PoolPages: 256, Monitor: mon})
	if err != nil {
		t.Fatal(err)
	}
	if err := ima.Register(source, mon); err != nil {
		t.Fatal(err)
	}
	target, err := engine.Open(engine.Config{Dir: filepath.Join(dir, "wdb"), PoolPages: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer source.Close()
	defer target.Close()

	d, err := New(Config{
		Source: source, Mon: mon, Target: target,
		Interval:    time.Hour, // the ticker never fires in this test
		FlushOnFull: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- d.Run(ctx) }()

	s := source.NewSession()
	exec(t, s, "CREATE TABLE f (id INTEGER PRIMARY KEY)")
	// Cross 90% of the 20-entry ring: the full signal must trigger a
	// poll long before the hourly tick.
	for i := 0; i < 19; i++ {
		exec(t, s, fmt.Sprintf("INSERT INTO f VALUES (%d)", i))
	}
	s.Close()
	deadline := time.After(5 * time.Second)
	for d.Stats().Polls == 0 {
		select {
		case <-deadline:
			t.Fatal("buffer-full signal never triggered a poll")
		case <-time.After(10 * time.Millisecond):
		}
	}
	cancel()
	<-runDone

	ws := target.NewSession()
	defer ws.Close()
	res := exec(t, ws, "SELECT COUNT(*) FROM "+workloaddb.Workload)
	if res.Rows[0][0].I == 0 {
		t.Error("nothing persisted by the full-triggered poll")
	}
}

func TestMonitorFullHandlerRearms(t *testing.T) {
	mon := monitor.New(monitor.Config{WorkloadCapacity: 10})
	var fires int
	mon.SetFullHandler(func() { fires++ })
	fill := func() {
		for i := 0; i < 10; i++ {
			h := mon.StartStatement(fmt.Sprintf("SELECT %d", i))
			h.Parsed("SELECT", nil)
			h.Finish(1, 0, 1, nil)
		}
	}
	fill()
	if fires != 1 {
		t.Fatalf("fires = %d after first fill", fires)
	}
	fill() // without a drain, the handler stays disarmed
	if fires != 1 {
		t.Fatalf("fires = %d without drain", fires)
	}
	mon.DrainWorkload()
	fill()
	if fires != 2 {
		t.Fatalf("fires = %d after drain+fill", fires)
	}
}

// TestPollPersistsActions: audit rows from the Actions hook land in
// ws_actions exactly once — the Seq watermark prevents re-inserting
// rows already persisted, and apply_failures flows into ws_statistics.
func TestPollPersistsActions(t *testing.T) {
	f := newFixture(t)
	rows := []ima.ActionRow{
		{Seq: 1, ActionID: 1, Kind: "create-index", Target: "t", SQL: "CREATE INDEX ix ON t (v) ONLINE", State: "proposed", AtUs: 100},
		{Seq: 2, ActionID: 1, Kind: "create-index", Target: "t", SQL: "CREATE INDEX ix ON t (v) ONLINE", State: "accepted", Baseline: 50, Observed: 55, DeltaPct: 10, Samples: 40, AtUs: 200, Detail: "within threshold"},
	}
	var failures int64 = 3
	d, err := New(Config{
		Source: f.source, Mon: f.mon, Target: f.target,
		Actions:       func() []ima.ActionRow { return rows },
		ApplyFailures: func() int64 { return failures },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Poll(); err != nil {
		t.Fatal(err)
	}
	// Second poll with one new row: only the new row is appended.
	rows = append(rows, ima.ActionRow{Seq: 3, ActionID: 2, Kind: "enlarge-buffer-pool", Target: "bufferpool", State: "proposed", AtUs: 300})
	if err := d.Poll(); err != nil {
		t.Fatal(err)
	}

	ts := f.target.NewSession()
	defer ts.Close()
	res := exec(t, ts, "SELECT seq, state, detail FROM "+workloaddb.Actions)
	if len(res.Rows) != 3 {
		t.Fatalf("ws_actions has %d rows, want 3 (watermark must prevent duplicates)", len(res.Rows))
	}
	seen := map[int64]string{}
	for _, r := range res.Rows {
		seen[r[0].I] = r[1].S
	}
	if seen[1] != "proposed" || seen[2] != "accepted" || seen[3] != "proposed" {
		t.Fatalf("unexpected ws_actions contents: %v", seen)
	}
	sres := exec(t, ts, "SELECT apply_failures FROM "+workloaddb.Statistics)
	if len(sres.Rows) == 0 || sres.Rows[len(sres.Rows)-1][0].I != failures {
		t.Fatalf("apply_failures not persisted in ws_statistics")
	}
}
