package daemon

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/ima"
	"repro/internal/monitor"
	"repro/internal/workloaddb"
)

type fixture struct {
	source *engine.DB
	target *engine.DB
	mon    *monitor.Monitor
	sess   *engine.Session
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	dir := t.TempDir()
	mon := monitor.New(monitor.Config{})
	source, err := engine.Open(engine.Config{Dir: filepath.Join(dir, "src"), PoolPages: 256, Monitor: mon})
	if err != nil {
		t.Fatal(err)
	}
	if err := ima.Register(source, mon); err != nil {
		t.Fatal(err)
	}
	target, err := engine.Open(engine.Config{Dir: filepath.Join(dir, "wdb"), PoolPages: 256})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { source.Close(); target.Close() })
	s := source.NewSession()
	t.Cleanup(s.Close)
	exec(t, s, "CREATE TABLE t (id INTEGER PRIMARY KEY, v VARCHAR(16))")
	for i := 0; i < 10; i++ {
		exec(t, s, fmt.Sprintf("INSERT INTO t VALUES (%d, 'x%d')", i, i))
	}
	return &fixture{source: source, target: target, mon: mon, sess: s}
}

func exec(t *testing.T, s *engine.Session, sql string) *engine.Result {
	t.Helper()
	res, err := s.Exec(sql)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	return res
}

func TestNewValidatesConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestPollPersistsWorkload(t *testing.T) {
	f := newFixture(t)
	d, err := New(Config{Source: f.source, Mon: f.mon, Target: f.target})
	if err != nil {
		t.Fatal(err)
	}
	exec(t, f.sess, "SELECT v FROM t WHERE id = 1")
	exec(t, f.sess, "SELECT v FROM t WHERE id = 2")
	if err := d.Poll(); err != nil {
		t.Fatal(err)
	}

	ws := f.target.NewSession()
	defer ws.Close()
	res := exec(t, ws, "SELECT COUNT(*) FROM "+workloaddb.Workload)
	if res.Rows[0][0].I < 2 {
		t.Errorf("workload rows = %v", res.Rows[0][0])
	}
	res = exec(t, ws, "SELECT COUNT(*) FROM "+workloaddb.Statements)
	if res.Rows[0][0].I == 0 {
		t.Error("statements not persisted")
	}
	res = exec(t, ws, "SELECT COUNT(*) FROM "+workloaddb.Statistics)
	if res.Rows[0][0].I != 1 {
		t.Errorf("statistics rows = %v", res.Rows[0][0])
	}
	res = exec(t, ws, "SELECT COUNT(*) FROM "+workloaddb.Tables+" WHERE table_name = 't'")
	if res.Rows[0][0].I != 1 {
		t.Errorf("tables rows = %v", res.Rows[0][0])
	}
	if st := d.Stats(); st.Polls != 1 || st.RowsAppended == 0 {
		t.Errorf("daemon stats: %+v", st)
	}
}

func TestDrainAvoidsDuplicateWorkload(t *testing.T) {
	f := newFixture(t)
	d, _ := New(Config{Source: f.source, Mon: f.mon, Target: f.target})
	exec(t, f.sess, "SELECT v FROM t WHERE id = 1")
	if err := d.Poll(); err != nil {
		t.Fatal(err)
	}
	if err := d.Poll(); err != nil { // no new statements in between
		t.Fatal(err)
	}
	ws := f.target.NewSession()
	defer ws.Close()
	res := exec(t, ws, fmt.Sprintf(
		"SELECT COUNT(*) FROM %s WHERE hash = %d",
		workloaddb.Workload, int64(monitor.HashStatement("SELECT v FROM t WHERE id = 1"))))
	if res.Rows[0][0].I != 1 {
		t.Errorf("workload entry duplicated across polls: %v", res.Rows[0][0])
	}
}

func TestReferencesNotDuplicated(t *testing.T) {
	f := newFixture(t)
	d, _ := New(Config{Source: f.source, Mon: f.mon, Target: f.target})
	exec(t, f.sess, "SELECT v FROM t WHERE id = 1")
	d.Poll()
	exec(t, f.sess, "SELECT v FROM t WHERE id = 1")
	d.Poll()
	ws := f.target.NewSession()
	defer ws.Close()
	// One reference row per (statement, object), not per poll.
	hash := int64(monitor.HashStatement("SELECT v FROM t WHERE id = 1"))
	res := exec(t, ws, fmt.Sprintf(
		"SELECT COUNT(*) FROM %s WHERE obj_type = 'table' AND obj_name = 't' AND hash = %d",
		workloaddb.References, hash))
	if res.Rows[0][0].I != 1 {
		t.Errorf("reference rows = %v, want 1", res.Rows[0][0])
	}
}

func TestRetentionPruning(t *testing.T) {
	f := newFixture(t)
	clock := time.Now()
	d, err := New(Config{
		Source: f.source, Mon: f.mon, Target: f.target,
		Retention: time.Hour,
		Now:       func() time.Time { return clock },
	})
	if err != nil {
		t.Fatal(err)
	}
	exec(t, f.sess, "SELECT v FROM t WHERE id = 1")
	d.Poll()

	ws := f.target.NewSession()
	before := exec(t, ws, "SELECT COUNT(*) FROM "+workloaddb.Statistics).Rows[0][0].I
	ws.Close()
	if before == 0 {
		t.Fatal("nothing persisted")
	}

	// Jump the clock past retention; the next poll prunes.
	clock = clock.Add(3 * time.Hour)
	if err := d.Poll(); err != nil {
		t.Fatal(err)
	}
	ws = f.target.NewSession()
	defer ws.Close()
	res := exec(t, ws, "SELECT MIN(ts_us) FROM "+workloaddb.Statistics)
	min := res.Rows[0][0].I
	cutoff := clock.Add(-time.Hour).UnixMicro()
	if min < cutoff {
		t.Errorf("rows older than retention survive: min=%d cutoff=%d", min, cutoff)
	}
	if d.Stats().RowsPruned == 0 {
		t.Error("nothing pruned")
	}
}

func TestAlerts(t *testing.T) {
	f := newFixture(t)
	var events []Event
	d, err := New(Config{
		Source: f.source, Mon: f.mon, Target: f.target,
		Alerts: []Alert{
			{
				Name:      "too-many-statements",
				Query:     "SELECT statements FROM ima_statistics",
				Op:        ">",
				Threshold: 0,
				Action:    func(e Event) { events = append(events, e) },
			},
			{
				Name:      "never-fires",
				Query:     "SELECT statements FROM ima_statistics",
				Op:        "<",
				Threshold: -1,
				Action:    func(e Event) { t.Error("must not fire") },
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	exec(t, f.sess, "SELECT COUNT(*) FROM t")
	if err := d.Poll(); err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Alert != "too-many-statements" || events[0].Value <= 0 {
		t.Errorf("events: %+v", events)
	}
	if d.Stats().AlertsFired != 1 {
		t.Errorf("AlertsFired = %d", d.Stats().AlertsFired)
	}
}

func TestAlertErrors(t *testing.T) {
	f := newFixture(t)
	d, _ := New(Config{
		Source: f.source, Mon: f.mon, Target: f.target,
		Alerts: []Alert{{Name: "bad", Query: "SELECT nope FROM missing", Op: ">", Threshold: 0}},
	})
	if err := d.Poll(); err == nil {
		t.Fatal("broken alert query not reported")
	}
	f2 := newFixture(t)
	d2, _ := New(Config{
		Source: f2.source, Mon: f2.mon, Target: f2.target,
		Alerts: []Alert{{Name: "badop", Query: "SELECT statements FROM ima_statistics", Op: "!!", Threshold: 0}},
	})
	if err := d2.Poll(); err == nil {
		t.Fatal("bad operator not reported")
	}
}

func TestRunLoop(t *testing.T) {
	f := newFixture(t)
	d, _ := New(Config{
		Source: f.source, Mon: f.mon, Target: f.target,
		Interval: 10 * time.Millisecond,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	exec(t, f.sess, "SELECT COUNT(*) FROM t")
	err := d.Run(ctx)
	if err != context.DeadlineExceeded {
		t.Fatalf("Run returned %v", err)
	}
	if d.Stats().Polls < 2 {
		t.Errorf("polls = %d", d.Stats().Polls)
	}
}

func TestGrowthModel(t *testing.T) {
	// The paper: 33 statements/s → ≈28 MB/h, capped ≈4.7 GB at 7 days.
	g := workloaddb.GrowthModel{
		StatementsPerSecond: 33,
		BytesPerWorkloadRow: 28e6 / 3600.0 / 33, // back-solved from the paper
		Retention:           7 * 24 * time.Hour,
	}
	perHour := g.BytesPerHour()
	if perHour < 27e6 || perHour > 29e6 {
		t.Errorf("BytesPerHour = %g, want ≈28 MB", perHour)
	}
	cap := g.CapBytes()
	if cap < 4.5e9 || cap > 4.9e9 {
		t.Errorf("CapBytes = %g, want ≈4.7 GB", cap)
	}
}

func TestFlushOnFull(t *testing.T) {
	dir := t.TempDir()
	mon := monitor.New(monitor.Config{WorkloadCapacity: 20})
	source, err := engine.Open(engine.Config{Dir: filepath.Join(dir, "src"), PoolPages: 256, Monitor: mon})
	if err != nil {
		t.Fatal(err)
	}
	if err := ima.Register(source, mon); err != nil {
		t.Fatal(err)
	}
	target, err := engine.Open(engine.Config{Dir: filepath.Join(dir, "wdb"), PoolPages: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer source.Close()
	defer target.Close()

	d, err := New(Config{
		Source: source, Mon: mon, Target: target,
		Interval:    time.Hour, // the ticker never fires in this test
		FlushOnFull: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- d.Run(ctx) }()

	s := source.NewSession()
	exec(t, s, "CREATE TABLE f (id INTEGER PRIMARY KEY)")
	// Cross 90% of the 20-entry ring: the full signal must trigger a
	// poll long before the hourly tick.
	for i := 0; i < 19; i++ {
		exec(t, s, fmt.Sprintf("INSERT INTO f VALUES (%d)", i))
	}
	s.Close()
	deadline := time.After(5 * time.Second)
	for d.Stats().Polls == 0 {
		select {
		case <-deadline:
			t.Fatal("buffer-full signal never triggered a poll")
		case <-time.After(10 * time.Millisecond):
		}
	}
	cancel()
	<-runDone

	ws := target.NewSession()
	defer ws.Close()
	res := exec(t, ws, "SELECT COUNT(*) FROM "+workloaddb.Workload)
	if res.Rows[0][0].I == 0 {
		t.Error("nothing persisted by the full-triggered poll")
	}
}

func TestMonitorFullHandlerRearms(t *testing.T) {
	mon := monitor.New(monitor.Config{WorkloadCapacity: 10})
	var fires int
	mon.SetFullHandler(func() { fires++ })
	fill := func() {
		for i := 0; i < 10; i++ {
			h := mon.StartStatement(fmt.Sprintf("SELECT %d", i))
			h.Parsed("SELECT", nil)
			h.Finish(1, 0, 1, nil)
		}
	}
	fill()
	if fires != 1 {
		t.Fatalf("fires = %d after first fill", fires)
	}
	fill() // without a drain, the handler stays disarmed
	if fires != 1 {
		t.Fatalf("fires = %d without drain", fires)
	}
	mon.DrainWorkload()
	fill()
	if fires != 2 {
		t.Fatalf("fires = %d after drain+fill", fires)
	}
}
