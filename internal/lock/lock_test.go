package lock

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSharedLocksAreCompatible(t *testing.T) {
	m := NewManager()
	if err := m.Acquire(1, "t", Shared); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- m.Acquire(2, "t", Shared) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("second shared lock blocked")
	}
	st := m.Stats()
	if st.Held != 2 || st.Waits != 0 {
		t.Errorf("stats: %+v", st)
	}
}

func TestExclusiveBlocksAndFIFO(t *testing.T) {
	m := NewManager()
	if err := m.Acquire(1, "t", Exclusive); err != nil {
		t.Fatal(err)
	}
	var order []int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, s := range []int64{2, 3} {
		wg.Add(1)
		s := s
		go func() {
			defer wg.Done()
			if err := m.Acquire(s, "t", Exclusive); err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			order = append(order, s)
			mu.Unlock()
			time.Sleep(10 * time.Millisecond)
			m.Release(s, "t")
		}()
		// Give each goroutine time to enqueue so the FIFO order is
		// deterministic.
		time.Sleep(50 * time.Millisecond)
	}
	if got := m.Stats().Waiting; got != 2 {
		t.Errorf("Waiting = %d", got)
	}
	m.Release(1, "t")
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 2 || order[0] != 2 || order[1] != 3 {
		t.Errorf("grant order = %v, want [2 3]", order)
	}
	if st := m.Stats(); st.Held != 0 || st.Waiting != 0 {
		t.Errorf("final stats: %+v", st)
	}
}

func TestWriterNotStarvedByReaders(t *testing.T) {
	m := NewManager()
	m.Acquire(1, "t", Shared)
	// Writer queues behind the reader.
	writerDone := make(chan error, 1)
	go func() { writerDone <- m.Acquire(2, "t", Exclusive) }()
	time.Sleep(50 * time.Millisecond)
	// A new reader must now wait behind the queued writer.
	readerDone := make(chan error, 1)
	go func() { readerDone <- m.Acquire(3, "t", Shared) }()
	time.Sleep(50 * time.Millisecond)
	select {
	case <-readerDone:
		t.Fatal("reader jumped the writer queue")
	default:
	}
	m.Release(1, "t")
	if err := <-writerDone; err != nil {
		t.Fatal(err)
	}
	m.Release(2, "t")
	if err := <-readerDone; err != nil {
		t.Fatal(err)
	}
}

func TestReentrantAndUpgrade(t *testing.T) {
	m := NewManager()
	if err := m.Acquire(1, "t", Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(1, "t", Shared); err != nil {
		t.Fatal(err)
	}
	// Sole-holder upgrade succeeds immediately.
	if err := m.Acquire(1, "t", Exclusive); err != nil {
		t.Fatal(err)
	}
	if !m.Holding(1, "t", Exclusive) {
		t.Error("upgrade did not stick")
	}
	// X then S is a no-op.
	if err := m.Acquire(1, "t", Shared); err != nil {
		t.Fatal(err)
	}
	if !m.Holding(1, "t", Exclusive) {
		t.Error("downgrade happened implicitly")
	}
}

func TestDeadlockDetection(t *testing.T) {
	m := NewManager()
	if err := m.Acquire(1, "a", Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(2, "b", Exclusive); err != nil {
		t.Fatal(err)
	}
	// Session 1 waits for b (held by 2).
	errc := make(chan error, 1)
	go func() { errc <- m.Acquire(1, "b", Exclusive) }()
	time.Sleep(50 * time.Millisecond)
	// Session 2 requesting a would close the cycle: must abort.
	err := m.Acquire(2, "a", Exclusive)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("expected ErrDeadlock, got %v", err)
	}
	if m.Stats().Deadlocks != 1 {
		t.Errorf("Deadlocks = %d", m.Stats().Deadlocks)
	}
	// Victim releases; session 1 proceeds.
	m.ReleaseAll(2)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}

func TestThreeWayDeadlock(t *testing.T) {
	m := NewManager()
	m.Acquire(1, "a", Exclusive)
	m.Acquire(2, "b", Exclusive)
	m.Acquire(3, "c", Exclusive)
	go m.Acquire(1, "b", Exclusive) // 1 -> 2
	time.Sleep(30 * time.Millisecond)
	go m.Acquire(2, "c", Exclusive) // 2 -> 3
	time.Sleep(30 * time.Millisecond)
	err := m.Acquire(3, "a", Exclusive) // 3 -> 1: cycle
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("expected ErrDeadlock, got %v", err)
	}
	m.ReleaseAll(3)
	m.ReleaseAll(2)
	m.ReleaseAll(1)
}

func TestReleaseAll(t *testing.T) {
	m := NewManager()
	m.Acquire(7, "a", Shared)
	m.Acquire(7, "b", Exclusive)
	m.Acquire(7, "c", Shared)
	if m.Stats().Held != 3 {
		t.Fatalf("Held = %d", m.Stats().Held)
	}
	m.ReleaseAll(7)
	if st := m.Stats(); st.Held != 0 {
		t.Errorf("after ReleaseAll: %+v", st)
	}
	if m.Holding(7, "a", Shared) {
		t.Error("still holding after ReleaseAll")
	}
}

func TestConcurrentStress(t *testing.T) {
	m := NewManager()
	const sessions = 16
	const iters = 200
	resources := []string{"r1", "r2", "r3"}
	var deadlocks atomic.Int64
	var wg sync.WaitGroup
	for s := int64(1); s <= sessions; s++ {
		wg.Add(1)
		s := s
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				res := resources[(int(s)+i)%len(resources)]
				mode := Shared
				if i%5 == 0 {
					mode = Exclusive
				}
				if err := m.Acquire(s, res, mode); err != nil {
					if errors.Is(err, ErrDeadlock) {
						deadlocks.Add(1)
						m.ReleaseAll(s)
						continue
					}
					t.Error(err)
					return
				}
				m.Release(s, res)
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("stress test deadlocked (undetected cycle or lost wakeup)")
	}
	if st := m.Stats(); st.Held != 0 || st.Waiting != 0 {
		t.Errorf("locks leaked: %+v", st)
	}
}
