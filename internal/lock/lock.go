// Package lock implements a lock manager for named resources with
// shared, intention-exclusive and exclusive modes, FIFO wait queues and
// wait-for-graph deadlock detection. The engine keys both table locks
// and MVCC row locks through it (row resources embed the TID in the
// name, so the same queues and deadlock detector serve both). Its
// counters (locks in use, lock waits, deadlocks) feed the
// system-statistics sensor behind the paper's locks diagram (Figure 8).
package lock

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Mode is a lock mode.
type Mode int

// Lock modes. Only Exclusive conflicts: S-S, S-IX and IX-IX are all
// compatible. Intent marks a table as having row-level writers so DDL
// (which takes Exclusive) waits them out, without writers blocking
// readers. The ordering matters: holding a stronger mode satisfies
// requests for weaker ones, and Intent excludes everything Shared does
// (namely Exclusive), so Intent ≥ Shared is sound.
const (
	Shared Mode = iota
	Intent
	Exclusive
)

// String returns "S", "IX" or "X".
func (m Mode) String() string {
	switch m {
	case Exclusive:
		return "X"
	case Intent:
		return "IX"
	}
	return "S"
}

// ErrDeadlock is returned to the session chosen as the deadlock victim.
var ErrDeadlock = errors.New("lock: deadlock detected, request aborted")

type waiter struct {
	session int64
	mode    Mode
	ready   chan error
}

type lockState struct {
	holders map[int64]Mode
	queue   []*waiter
}

// Stats is a snapshot of lock-manager counters. Grants, Waits and
// Deadlocks are cumulative; Held and Waiting are instantaneous.
type Stats struct {
	Held      int
	Waiting   int
	Grants    int64
	Waits     int64
	WaitNanos int64
	Deadlocks int64
}

// Manager is a lock manager for named resources (tables). It is safe
// for concurrent use.
type Manager struct {
	mu        sync.Mutex
	locks     map[string]*lockState
	waitsFor  map[int64]string // session -> resource it is queued on
	grants    atomic.Int64
	waits     atomic.Int64
	waitNanos atomic.Int64 // cumulative time sessions spent parked
	deadlocks atomic.Int64
}

// NewManager creates an empty lock manager.
func NewManager() *Manager {
	return &Manager{
		locks:    map[string]*lockState{},
		waitsFor: map[int64]string{},
	}
}

// Acquire takes the named lock in the given mode for session, blocking
// until granted. It returns ErrDeadlock if granting would close a cycle
// in the wait-for graph (the requester is the victim). Re-acquiring a
// lock the session already holds at the same or stronger mode is a
// no-op; a sole Shared holder upgrades to Exclusive in place.
func (m *Manager) Acquire(session int64, resource string, mode Mode) error {
	m.mu.Lock()
	ls := m.locks[resource]
	if ls == nil {
		ls = &lockState{holders: map[int64]Mode{}}
		m.locks[resource] = ls
	}
	upgrade := false
	if held, ok := ls.holders[session]; ok {
		if held >= mode {
			m.mu.Unlock()
			return nil
		}
		// Upgrading holders skip the FIFO queue check: a holder parked
		// behind a queued Exclusive waiter could never be granted (the
		// waiter is blocked on the very lock the holder keeps), and the
		// cycle runs through the queue where the DFS cannot see it.
		// Holder-holder upgrade cycles are still caught below.
		upgrade = true
	}
	if m.grantableLocked(ls, session, mode, upgrade) {
		ls.holders[session] = mode
		m.grants.Add(1)
		m.mu.Unlock()
		return nil
	}
	// Must wait: first check for a deadlock cycle.
	if m.wouldDeadlockLocked(session, resource) {
		m.deadlocks.Add(1)
		m.mu.Unlock()
		return fmt.Errorf("%w (session %d on %s %s)", ErrDeadlock, session, resource, mode)
	}
	w := &waiter{session: session, mode: mode, ready: make(chan error, 1)}
	ls.queue = append(ls.queue, w)
	m.waitsFor[session] = resource
	m.waits.Add(1)
	m.mu.Unlock()

	t0 := time.Now()
	err := <-w.ready
	m.waitNanos.Add(int64(time.Since(t0)))
	return err
}

// grantableLocked reports whether the request is compatible with the
// current holders and (unless upgrading) does not jump an incompatible
// FIFO queue.
func (m *Manager) grantableLocked(ls *lockState, session int64, mode Mode, upgrade bool) bool {
	for holder, held := range ls.holders {
		if holder == session {
			continue
		}
		if mode == Exclusive || held == Exclusive {
			return false
		}
	}
	if upgrade {
		return true
	}
	// Do not starve queued writers: a new compatible request waits
	// behind a queued exclusive one.
	for _, w := range ls.queue {
		if mode == Exclusive || w.mode == Exclusive {
			return false
		}
	}
	return true
}

// wouldDeadlockLocked runs a DFS over the wait-for graph assuming the
// session starts waiting on resource.
func (m *Manager) wouldDeadlockLocked(session int64, resource string) bool {
	// blockers(s) = holders of the resource s waits on, minus s itself.
	visited := map[int64]bool{}
	var dfs func(s int64) bool
	dfs = func(s int64) bool {
		if s == session {
			return true
		}
		if visited[s] {
			return false
		}
		visited[s] = true
		res, waiting := m.waitsFor[s]
		if !waiting {
			return false
		}
		ls := m.locks[res]
		if ls == nil {
			return false
		}
		for holder := range ls.holders {
			if holder != s && dfs(holder) {
				return true
			}
		}
		return false
	}
	ls := m.locks[resource]
	if ls == nil {
		return false
	}
	for holder := range ls.holders {
		if holder != session && dfs(holder) {
			return true
		}
	}
	return false
}

// Release drops session's lock on resource and grants any now-eligible
// waiters in FIFO order.
func (m *Manager) Release(session int64, resource string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.releaseLocked(session, resource)
}

// ReleaseAll drops every lock the session holds and removes it from
// every wait queue (waiters are woken with ErrDeadlock-free nil only
// when granted; cancelled waiters receive ErrReleased).
func (m *Manager) ReleaseAll(session int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var resources []string
	for res, ls := range m.locks {
		if _, ok := ls.holders[session]; ok {
			resources = append(resources, res)
		}
	}
	sort.Strings(resources)
	for _, res := range resources {
		m.releaseLocked(session, res)
	}
}

func (m *Manager) releaseLocked(session int64, resource string) {
	ls := m.locks[resource]
	if ls == nil {
		return
	}
	delete(ls.holders, session)
	// Grant from the front of the queue while compatible.
	for len(ls.queue) > 0 {
		w := ls.queue[0]
		compatible := true
		for holder, held := range ls.holders {
			if holder == w.session {
				continue
			}
			if w.mode == Exclusive || held == Exclusive {
				compatible = false
				break
			}
		}
		if !compatible {
			break
		}
		ls.queue = ls.queue[1:]
		ls.holders[w.session] = w.mode
		delete(m.waitsFor, w.session)
		m.grants.Add(1)
		w.ready <- nil
	}
	if len(ls.holders) == 0 && len(ls.queue) == 0 {
		delete(m.locks, resource)
	}
}

// Stats returns a snapshot of the lock counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	held, waiting := 0, 0
	for _, ls := range m.locks {
		held += len(ls.holders)
		waiting += len(ls.queue)
	}
	m.mu.Unlock()
	return Stats{
		Held:      held,
		Waiting:   waiting,
		Grants:    m.grants.Load(),
		Waits:     m.waits.Load(),
		WaitNanos: m.waitNanos.Load(),
		Deadlocks: m.deadlocks.Load(),
	}
}

// Holding reports whether the session holds the resource at mode or
// stronger.
func (m *Manager) Holding(session int64, resource string, mode Mode) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	ls := m.locks[resource]
	if ls == nil {
		return false
	}
	held, ok := ls.holders[session]
	return ok && held >= mode
}
