// Package repro_test benchmarks the reproduction: one benchmark per
// evaluated figure plus microbenchmarks for the substrates. The
// figure-level results (relative overheads, analyzer outcome) are
// emitted as custom benchmark metrics; `cmd/benchrunner` prints the
// full tables and charts.
//
// Run with:
//
//	go test -bench=. -benchmem
package repro_test

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/daemon"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/ima"
	"repro/internal/monitor"
	"repro/internal/nref"
	"repro/internal/sqlparser"
	"repro/internal/sqltypes"
	"repro/internal/storage"
)

const benchScale = 4000

var (
	benchMu   sync.Mutex
	benchRoot string
	instances = map[string]*benchInstance{}
	benchSeq  int
)

// benchFile creates a unique page file for one benchmark invocation.
func benchFile(b *testing.B, pool *storage.Pool) *storage.File {
	b.Helper()
	benchMu.Lock()
	benchSeq++
	n := benchSeq
	benchMu.Unlock()
	f, err := storage.OpenFile(fmt.Sprintf("%s/bench_%d.dat", benchRoot, n), pool)
	if err != nil {
		b.Fatal(err)
	}
	return f
}

type benchInstance struct {
	db  *engine.DB
	mon *monitor.Monitor
	wdb *engine.DB
	dm  *daemon.Daemon
}

func TestMain(m *testing.M) {
	var err error
	benchRoot, err = os.MkdirTemp("", "repro-bench-")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	code := m.Run()
	for _, inst := range instances {
		inst.db.Close()
		if inst.wdb != nil {
			inst.wdb.Close()
		}
	}
	os.RemoveAll(benchRoot)
	os.Exit(code)
}

// getInstance lazily loads one NREF database per setup, shared across
// benchmarks.
func getInstance(b *testing.B, setup string) *benchInstance {
	b.Helper()
	benchMu.Lock()
	defer benchMu.Unlock()
	if inst, ok := instances[setup]; ok {
		return inst
	}
	inst := &benchInstance{}
	if setup != "original" {
		inst.mon = monitor.New(monitor.Config{WorkloadCapacity: 1000})
	}
	db, err := engine.Open(engine.Config{
		Dir:       benchRoot + "/" + setup + "/db",
		PoolPages: 2048,
		Monitor:   inst.mon,
	})
	if err != nil {
		b.Fatal(err)
	}
	inst.db = db
	if inst.mon != nil {
		if err := ima.Register(db, inst.mon); err != nil {
			b.Fatal(err)
		}
	}
	if err := nref.NewGenerator(benchScale, 42).Load(db); err != nil {
		b.Fatal(err)
	}
	if setup == "daemon" {
		wdb, err := engine.Open(engine.Config{Dir: benchRoot + "/" + setup + "/wdb", PoolPages: 512})
		if err != nil {
			b.Fatal(err)
		}
		inst.wdb = wdb
		dm, err := daemon.New(daemon.Config{Source: db, Mon: inst.mon, Target: wdb})
		if err != nil {
			b.Fatal(err)
		}
		inst.dm = dm
	}
	instances[setup] = inst
	return inst
}

// runWorkload executes b.N statements drawn from the generator fn.
func runWorkload(b *testing.B, inst *benchInstance, fn func(i int) string) {
	s := inst.db.NewSession()
	defer s.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Exec(fn(i)); err != nil {
			b.Fatal(err)
		}
		// The daemon setup polls every 20000 statements, matching its
		// wall-clock cadence at the engine's statement throughput.
		if inst.dm != nil && i%20000 == 19999 {
			if err := inst.dm.Poll(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- Figure 4: the three workloads on the three setups ---------------

func benchComplex(b *testing.B, setup string) {
	inst := getInstance(b, setup)
	qs := nref.Complex50(benchScale)
	runWorkload(b, inst, func(i int) string { return qs[i%len(qs)] })
}

func benchJoin(b *testing.B, setup string) {
	inst := getInstance(b, setup)
	runWorkload(b, inst, func(i int) string { return nref.SimpleJoinStatement(i, benchScale) })
}

func benchSelect(b *testing.B, setup string) {
	inst := getInstance(b, setup)
	runWorkload(b, inst, func(i int) string { return nref.PointSelectStatement(i, benchScale) })
}

func BenchmarkFig4_Complex_Original(b *testing.B)   { benchComplex(b, "original") }
func BenchmarkFig4_Complex_Monitoring(b *testing.B) { benchComplex(b, "monitoring") }
func BenchmarkFig4_Complex_Daemon(b *testing.B)     { benchComplex(b, "daemon") }

func BenchmarkFig4_SimpleJoin_Original(b *testing.B)   { benchJoin(b, "original") }
func BenchmarkFig4_SimpleJoin_Monitoring(b *testing.B) { benchJoin(b, "monitoring") }
func BenchmarkFig4_SimpleJoin_Daemon(b *testing.B)     { benchJoin(b, "daemon") }

func BenchmarkFig4_PointSelect_Original(b *testing.B)   { benchSelect(b, "original") }
func BenchmarkFig4_PointSelect_Monitoring(b *testing.B) { benchSelect(b, "monitoring") }
func BenchmarkFig4_PointSelect_Daemon(b *testing.B)     { benchSelect(b, "daemon") }

// --- Figure 5: share of monitoring -----------------------------------

func BenchmarkFig5_MonitoringShare(b *testing.B) {
	inst := getInstance(b, "monitoring")
	s := inst.db.NewSession()
	defer s.Close()
	// Warm caches so the share reflects the steady state of Figure 5's
	// right-hand side.
	for i := 0; i < 2000; i++ {
		if _, err := s.Exec(nref.PointSelectStatement(i, benchScale)); err != nil {
			b.Fatal(err)
		}
	}
	mon0 := inst.mon.TotalMonitorTime()
	b.ResetTimer()
	start := nowNano()
	for i := 0; i < b.N; i++ {
		if _, err := s.Exec(nref.PointSelectStatement(i, benchScale)); err != nil {
			b.Fatal(err)
		}
	}
	elapsed := nowNano() - start
	monD := int64(inst.mon.TotalMonitorTime() - mon0)
	if elapsed > 0 {
		b.ReportMetric(float64(monD)/float64(elapsed)*100, "monitor-share-%")
	}
}

// --- Figures 6 & 7: the analyzer experiment --------------------------

func BenchmarkFig7_Analyzer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		dir, err := os.MkdirTemp(benchRoot, "fig7-")
		if err != nil {
			b.Fatal(err)
		}
		res, err := experiments.RunFig7(experiments.Config{
			Dir: dir, Scale: 2000, ComplexN: 25, JoinsN: 1, SelectsN: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		last := res.Rows[len(res.Rows)-1]
		b.ReportMetric(last.RuntimePercent, "analyser-runtime-%")
		b.ReportMetric(float64(res.IndexRecs), "indexes-recommended")
		os.RemoveAll(dir)
	}
}

// --- Figure 8: locking under contention ------------------------------

func BenchmarkFig8_Locks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		dir, err := os.MkdirTemp(benchRoot, "fig8-")
		if err != nil {
			b.Fatal(err)
		}
		res, err := experiments.RunFig8(experiments.Config{
			Dir: dir, Scale: 600, JoinsN: 1, SelectsN: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.LockWaits), "lock-waits")
		b.ReportMetric(float64(res.Deadlocks), "deadlocks")
		os.RemoveAll(dir)
	}
}

// --- §V-A microbenchmarks: sensor and substrate costs ----------------

func BenchmarkMonitorCall(b *testing.B) {
	m := monitor.New(monitor.Config{})
	tables := []string{"protein"}
	attrs := []string{"protein.nref_id"}
	idx := []string{"pk_protein"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := m.StartStatement("SELECT p.nref_id FROM protein p WHERE p.nref_id = 'NF00000001'")
		h.Parsed("SELECT", tables)
		h.Optimized(10, 5, 1, attrs, idx, 0)
		h.Finish(12, 0, 1, nil)
	}
}

// BenchmarkMonitorCallParallel{1,4,16} run the §V-A sensor-call
// microbenchmark from concurrent goroutines (the paper's 1M-row point
// select shape, every session issuing the same statement). The sharded
// hot path keeps ns/op flat as goroutines scale, where the seed's
// single global mutex degraded; EXPERIMENTS.md records before/after
// numbers.
func BenchmarkMonitorCallParallel1(b *testing.B)  { benchMonitorCallParallel(b, 1) }
func BenchmarkMonitorCallParallel4(b *testing.B)  { benchMonitorCallParallel(b, 4) }
func BenchmarkMonitorCallParallel16(b *testing.B) { benchMonitorCallParallel(b, 16) }

func benchMonitorCallParallel(b *testing.B, goroutines int) {
	prev := runtime.GOMAXPROCS(goroutines)
	defer runtime.GOMAXPROCS(prev)
	m := monitor.New(monitor.Config{})
	tables := []string{"protein"}
	attrs := []string{"protein.nref_id"}
	idx := []string{"pk_protein"}
	b.ReportAllocs()
	b.ResetTimer()
	// RunParallel spawns GOMAXPROCS goroutines.
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h := m.StartStatement("SELECT p.nref_id FROM protein p WHERE p.nref_id = 'NF00000001'")
			h.Parsed("SELECT", tables)
			h.Optimized(10, 5, 1, attrs, idx, 0)
			h.Finish(12, 0, 1, nil)
		}
	})
}

// BenchmarkMonitorChurnParallel{1,16} stress the opposite regime:
// every call is a distinct statement against a full table, so each
// sensor commit also evicts the globally oldest statement (the
// worst case for cross-shard coordination).
func BenchmarkMonitorChurnParallel1(b *testing.B)  { benchMonitorChurnParallel(b, 1) }
func BenchmarkMonitorChurnParallel16(b *testing.B) { benchMonitorChurnParallel(b, 16) }

func benchMonitorChurnParallel(b *testing.B, goroutines int) {
	prev := runtime.GOMAXPROCS(goroutines)
	defer runtime.GOMAXPROCS(prev)
	m := monitor.New(monitor.Config{})
	texts := make([]string, 4096)
	for i := range texts {
		texts[i] = nref.PointSelectStatement(i, 1<<20)
	}
	tables := []string{"protein"}
	attrs := []string{"protein.nref_id"}
	idx := []string{"pk_protein"}
	var ctr atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h := m.StartStatement(texts[ctr.Add(1)&4095])
			h.Parsed("SELECT", tables)
			h.Optimized(10, 5, 1, attrs, idx, 0)
			h.Finish(12, 0, 1, nil)
		}
	})
}

// BenchmarkPoolGetParallel{1,4,16} hammer the buffer pool's hot path
// (pin + unpin of a resident page) from concurrent goroutines over a
// fully warm pool: every iteration is a hit, so the numbers isolate
// the pool's own synchronization cost, exactly like the monitor's
// sensor-call benchmarks isolate the sensor. EXPERIMENTS.md records
// the single-mutex-vs-sharded before/after.
func BenchmarkPoolGetParallel1(b *testing.B)  { benchPoolGetParallel(b, 1) }
func BenchmarkPoolGetParallel4(b *testing.B)  { benchPoolGetParallel(b, 4) }
func BenchmarkPoolGetParallel16(b *testing.B) { benchPoolGetParallel(b, 16) }

// Half the pool's frames: with frames hash-partitioned into shards,
// a working set near capacity would overflow individual shards and
// turn the "warm hit" benchmark into a partial-eviction benchmark.
const poolBenchPages = 512

func benchPoolGetParallel(b *testing.B, goroutines int) {
	prev := runtime.GOMAXPROCS(goroutines)
	defer runtime.GOMAXPROCS(prev)
	pool := storage.NewPool(1024)
	f := benchFile(b, pool)
	defer f.Close()
	// Materialize the working set and warm the pool: after this loop
	// every page is resident and each benchmark iteration is a hit.
	for i := 0; i < poolBenchPages; i++ {
		pg, err := f.Allocate()
		if err != nil {
			b.Fatal(err)
		}
		p, err := f.GetPage(pg)
		if err != nil {
			b.Fatal(err)
		}
		p.MarkDirty()
		p.Release()
	}
	if err := f.Flush(); err != nil {
		b.Fatal(err)
	}
	var seed atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		// Per-goroutine xorshift so page choice never serializes.
		rng := seed.Add(0x9e3779b97f4a7c15)
		var p storage.Page
		for pb.Next() {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			if err := f.PinPage(uint32(rng%poolBenchPages), &p); err != nil {
				b.Fatal(err)
			}
			p.Release()
		}
	})
}

// BenchmarkPoolChurnParallel16 is the eviction-heavy regime: the
// working set is twice the pool, so roughly every other get evicts.
// The single-mutex baseline paid an O(resident) LRU scan under the
// global lock per eviction; the clock sweep is O(1) amortized per
// shard.
func BenchmarkPoolChurnParallel16(b *testing.B) {
	prev := runtime.GOMAXPROCS(16)
	defer runtime.GOMAXPROCS(prev)
	pool := storage.NewPool(512)
	f := benchFile(b, pool)
	defer f.Close()
	const pages = 1024
	for i := 0; i < pages; i++ {
		if _, err := f.Allocate(); err != nil {
			b.Fatal(err)
		}
	}
	if err := f.Flush(); err != nil {
		b.Fatal(err)
	}
	var seed atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := seed.Add(0x9e3779b97f4a7c15)
		var p storage.Page
		for pb.Next() {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			if err := f.PinPage(uint32(rng%pages), &p); err != nil {
				b.Fatal(err)
			}
			p.Release()
		}
	})
}

func BenchmarkBTreePut(b *testing.B) {
	pool := storage.NewPool(4096)
	f := benchFile(b, pool)
	defer f.Close()
	bt, err := storage.CreateBTree(f)
	if err != nil {
		b.Fatal(err)
	}
	val := []byte("0123456789abcdef")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := sqltypes.EncodeKey(nil, sqltypes.NewInt(int64(i)))
		if err := bt.Put(key, val); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBTreeGet(b *testing.B) {
	pool := storage.NewPool(4096)
	f := benchFile(b, pool)
	defer f.Close()
	bt, err := storage.CreateBTree(f)
	if err != nil {
		b.Fatal(err)
	}
	const n = 100000
	for i := 0; i < n; i++ {
		bt.Put(sqltypes.EncodeKey(nil, sqltypes.NewInt(int64(i))), []byte("v"))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := sqltypes.EncodeKey(nil, sqltypes.NewInt(int64(i%n)))
		if _, ok, err := bt.Get(key); err != nil || !ok {
			b.Fatal(err, ok)
		}
	}
}

func BenchmarkHeapInsert(b *testing.B) {
	pool := storage.NewPool(4096)
	f := benchFile(b, pool)
	defer f.Close()
	h := storage.OpenHeap(f, 1, 0)
	rec := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Insert(rec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseNormalized(b *testing.B) {
	const sql = "SELECT p.nref_id, o.organism_name FROM protein p JOIN organism o ON p.nref_id = o.nref_id WHERE p.nref_id = 'NF00001234'"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sqlparser.ParseNormalized(sql); err != nil {
			b.Fatal(err)
		}
	}
}

func nowNano() int64 { return time.Now().UnixNano() }

// --- Vectorized execution: batch vs row pipeline ---------------------

const scanAggRows = 20000

var (
	scanAggOnce sync.Once
	scanAggDB   *engine.DB
	scanAggErr  error
)

// scanAggInstance lazily builds a dedicated instance with one wide
// heap table, large enough that scan+decode dominates over parse and
// plan-cache overhead.
func scanAggInstance(b *testing.B) *engine.DB {
	b.Helper()
	scanAggOnce.Do(func() {
		db, err := engine.Open(engine.Config{Dir: benchRoot + "/scanagg/db", PoolPages: 4096})
		if err != nil {
			scanAggErr = err
			return
		}
		s := db.NewSession()
		_, err = s.Exec("CREATE TABLE scanrows (id INTEGER PRIMARY KEY, a INTEGER, f FLOAT, grp INTEGER, x INTEGER, y FLOAT)")
		s.Close()
		if err != nil {
			scanAggErr = err
			return
		}
		rows := make([]sqltypes.Row, scanAggRows)
		for i := range rows {
			rows[i] = sqltypes.Row{
				sqltypes.NewInt(int64(i)),
				sqltypes.NewInt(int64(i * 7919 % 1000)),
				sqltypes.NewFloat(float64(i%977) * 1.5),
				sqltypes.NewInt(int64(i % 16)),
				sqltypes.NewInt(int64(i % 8191)),
				sqltypes.NewFloat(float64(i) * 0.25),
			}
		}
		if err := db.BulkInsert("scanrows", rows); err != nil {
			scanAggErr = err
			return
		}
		scanAggDB = db
	})
	if scanAggErr != nil {
		b.Fatal(scanAggErr)
	}
	return scanAggDB
}

// benchScanAgg runs a scan+filter+aggregate statement — the query
// shape the vectorized pipeline targets — in the given execution mode.
// EXPERIMENTS.md records the row/batch before/after numbers.
func benchScanAgg(b *testing.B, batch bool) {
	db := scanAggInstance(b)
	s := db.NewSession()
	defer s.Close()
	s.SetBatchExec(batch)
	const q = "SELECT grp, COUNT(*), SUM(f) FROM scanrows WHERE a < 300 GROUP BY grp"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.Exec(q)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 16 {
			b.Fatalf("groups = %d", len(res.Rows))
		}
	}
}

func BenchmarkScanAgg_Row(b *testing.B)   { benchScanAgg(b, false) }
func BenchmarkScanAgg_Batch(b *testing.B) { benchScanAgg(b, true) }

// benchScanAggParallel runs the same scan+filter+aggregate statement
// from 8 concurrent sessions over a warm pool. Every batch step holds
// up to 16 page pins, so this is the workload the sharded buffer pool
// exists for: under the single global pool mutex all sessions
// serialize on every pin/unpin. EXPERIMENTS.md records before/after.
func benchScanAggParallel(b *testing.B, batch bool) {
	const goroutines = 8
	prev := runtime.GOMAXPROCS(goroutines)
	defer runtime.GOMAXPROCS(prev)
	db := scanAggInstance(b)
	const q = "SELECT grp, COUNT(*), SUM(f) FROM scanrows WHERE a < 300 GROUP BY grp"
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		s := db.NewSession()
		defer s.Close()
		s.SetBatchExec(batch)
		for pb.Next() {
			res, err := s.Exec(q)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Rows) != 16 {
				b.Fatalf("groups = %d", len(res.Rows))
			}
		}
	})
}

func BenchmarkScanAggParallel8_Row(b *testing.B)   { benchScanAggParallel(b, false) }
func BenchmarkScanAggParallel8_Batch(b *testing.B) { benchScanAggParallel(b, true) }

// benchScanAggMorsel runs the same statement on a single session with
// n-way intra-query morsel parallelism: one query, n workers pulling
// 64-page morsels from a shared dispenser. Contrast with
// benchScanAggParallel, which measures inter-query parallelism.
// EXPERIMENTS.md records the scaling curve; the bench trajectory file
// (benchrunner -bench-out) tracks it across PRs.
func benchScanAggMorsel(b *testing.B, workers int) {
	if prev := runtime.GOMAXPROCS(0); prev < workers {
		runtime.GOMAXPROCS(workers)
		defer runtime.GOMAXPROCS(prev)
	}
	db := scanAggInstance(b)
	s := db.NewSession()
	defer s.Close()
	s.SetParallel(workers)
	const q = "SELECT grp, COUNT(*), SUM(f) FROM scanrows WHERE a < 300 GROUP BY grp"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.Exec(q)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 16 {
			b.Fatalf("groups = %d", len(res.Rows))
		}
	}
}

func BenchmarkScanAggMorsel1(b *testing.B) { benchScanAggMorsel(b, 1) }
func BenchmarkScanAggMorsel4(b *testing.B) { benchScanAggMorsel(b, 4) }
func BenchmarkScanAggMorsel8(b *testing.B) { benchScanAggMorsel(b, 8) }

// BenchmarkBatchScan measures the storage-layer batch scan in
// isolation: page-at-a-time pinning into a reused record batch. The
// inner loop must stay allocation-free (TestScanBatchAllocs pins the
// invariant; this reports the amortized per-scan numbers).
func BenchmarkBatchScan(b *testing.B) {
	pool := storage.NewPool(4096)
	f := benchFile(b, pool)
	defer f.Close()
	h := storage.OpenHeap(f, 1, 0)
	rec := make([]byte, 64)
	for i := 0; i < scanAggRows; i++ {
		if _, err := h.Insert(rec); err != nil {
			b.Fatal(err)
		}
	}
	var rb storage.RecBatch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := h.ScanBatch()
		rows := 0
		for {
			ok, err := it.NextBatchMax(&rb, 1024)
			if err != nil {
				b.Fatal(err)
			}
			if !ok {
				break
			}
			rows += rb.Len()
		}
		if rows != scanAggRows {
			b.Fatalf("scanned %d rows", rows)
		}
	}
}

// --- Ablations: design choices called out in DESIGN.md ----------------

// BenchmarkAblation_PlanCacheOff measures the point select with the
// plan cache defeated (invalidated before every statement): the cost
// of parsing + optimizing every time, i.e. what Figure 5's warm-cache
// effect saves.
func BenchmarkAblation_PlanCacheOff(b *testing.B) {
	inst := getInstance(b, "original")
	s := inst.db.NewSession()
	defer s.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inst.db.InvalidatePlans()
		if _, err := s.Exec(nref.PointSelectStatement(i, benchScale)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_MonitorRing compares sensor cost across statement
// ring capacities: the ring keeps the commit O(1), so capacity must
// not matter.
func BenchmarkAblation_MonitorRing(b *testing.B) {
	for _, capacity := range []int{10, 1000, 100000} {
		b.Run(fmt.Sprintf("cap%d", capacity), func(b *testing.B) {
			m := monitor.New(monitor.Config{StatementCapacity: capacity})
			for i := 0; i < b.N; i++ {
				h := m.StartStatement(nref.PointSelectStatement(i, 1<<20))
				h.Parsed("SELECT", []string{"protein"})
				h.Finish(1, 0, 1, nil)
			}
		})
	}
}

// BenchmarkAblation_BufferPool compares a complex query under a
// starved pool (64 pages) vs the default (2048): the IO counters the
// monitor records come from exactly this difference.
func BenchmarkAblation_BufferPool(b *testing.B) {
	for _, pages := range []int{64, 2048} {
		b.Run(fmt.Sprintf("pages%d", pages), func(b *testing.B) {
			dir, err := os.MkdirTemp(benchRoot, "pool-")
			if err != nil {
				b.Fatal(err)
			}
			defer os.RemoveAll(dir)
			db, err := engine.Open(engine.Config{Dir: dir, PoolPages: pages})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			if err := nref.NewGenerator(2000, 42).Load(db); err != nil {
				b.Fatal(err)
			}
			q := nref.Complex50(2000)[0]
			s := db.NewSession()
			defer s.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Exec(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_IndexVsScan measures the same selective query with
// and without its index — the raw material of every analyzer win.
func BenchmarkAblation_IndexVsScan(b *testing.B) {
	dir, err := os.MkdirTemp(benchRoot, "ixvs-")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	db, err := engine.Open(engine.Config{Dir: dir, PoolPages: 2048})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	if err := nref.NewGenerator(4000, 42).Load(db); err != nil {
		b.Fatal(err)
	}
	q := "SELECT name FROM protein WHERE taxonomy_id = 3"
	s := db.NewSession()
	defer s.Close()
	b.Run("scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := s.Exec(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	if _, err := s.Exec("CREATE INDEX ix_abl_tax ON protein (taxonomy_id)"); err != nil {
		b.Fatal(err)
	}
	if _, err := s.Exec("CREATE STATISTICS FOR protein (taxonomy_id)"); err != nil {
		b.Fatal(err)
	}
	b.Run("index", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := s.Exec(q); err != nil {
				b.Fatal(err)
			}
		}
	})
}
