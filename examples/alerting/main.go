// Alerting shows the storage daemon's active alerting: threshold rules
// evaluated after each poll, notifying the DBA of defined database
// events — here, session pressure and deadlocks, like the paper's
// "reaching the maximum number of users" example.
//
//	go run ./examples/alerting
package main

import (
	"fmt"
	"log"
	"os"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/daemon"
)

func main() {
	dir, err := os.MkdirTemp("", "alerting-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	notify := func(e daemon.Event) {
		fmt.Printf("[ALERT %s] %s reached %.0f\n", e.When.Format("15:04:05.000"), e.Alert, e.Value)
	}
	sys, err := core.Open(core.Options{
		Dir: dir,
		Alerts: []daemon.Alert{
			{
				Name:      "session-pressure",
				Query:     "SELECT current_sessions FROM ima_statistics",
				Op:        ">=",
				Threshold: 4,
				Action:    notify,
			},
			{
				Name:      "deadlocks-detected",
				Query:     "SELECT deadlocks FROM ima_statistics",
				Op:        ">",
				Threshold: 0,
				Action:    notify,
			},
			{
				// A deliberately broken rule: the daemon isolates it —
				// the failure is logged and counted in AlertErrors, the
				// other alerts and the poll itself keep running.
				Name:      "broken-rule",
				Query:     "SELECT no_such_column FROM nowhere",
				Op:        ">",
				Threshold: 0,
				Action:    notify,
			},
		},
		Logf: log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	s := sys.Session()
	s.Exec("CREATE TABLE a (id INTEGER PRIMARY KEY, v INTEGER)")
	s.Exec("CREATE TABLE b (id INTEGER PRIMARY KEY, v INTEGER)")
	s.Exec("INSERT INTO a VALUES (1, 0), (2, 0)")
	s.Exec("INSERT INTO b VALUES (1, 0), (2, 0)")
	s.Close()

	// Simulate load: several concurrent sessions, two of them running
	// transactions that update a and b in opposite orders so the lock
	// manager occasionally declares a deadlock victim.
	var wg sync.WaitGroup
	stopAt := time.Now().Add(400 * time.Millisecond)
	for w := 0; w < 6; w++ {
		wg.Add(1)
		w := w
		go func() {
			defer wg.Done()
			sess := sys.Session()
			defer sess.Close()
			for time.Now().Before(stopAt) {
				first, second := "a", "b"
				if w%2 == 1 {
					first, second = "b", "a"
				}
				sess.Begin()
				if _, err := sess.Exec("UPDATE " + first + " SET v = v + 1 WHERE id = 1"); err == nil {
					sess.Exec("UPDATE " + second + " SET v = v + 1 WHERE id = 1")
				}
				sess.Commit()
			}
		}()
	}
	// Poll while the load runs: alerts fire from the daemon loop.
	pollDone := make(chan struct{})
	go func() {
		defer close(pollDone)
		for i := 0; i < 5; i++ {
			time.Sleep(100 * time.Millisecond)
			if err := sys.Poll(); err != nil {
				log.Println("poll:", err)
				return
			}
		}
	}()
	wg.Wait()
	<-pollDone

	ls := sys.DB.LockStats()
	fmt.Printf("\nfinal lock statistics: %d grants, %d waits, %d deadlocks\n",
		ls.Grants, ls.Waits, ls.Deadlocks)
	st := sys.Daemon.Stats()
	fmt.Printf("daemon: %d polls, %d alerts fired, %d alert errors (broken rule isolated, polling survived)\n",
		st.Polls, st.AlertsFired, st.AlertErrors)
}
