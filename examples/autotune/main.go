// Autotune drives the paper's full control loop (Figure 1) on the
// synthetic NREF database: load → run workload under monitoring →
// persist with the storage daemon → analyze → implement → measure the
// improvement.
//
//	go run ./examples/autotune
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/nref"
)

func main() {
	dir, err := os.MkdirTemp("", "autotune-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	sys, err := core.Open(core.Options{Dir: dir, PoolPages: 2048})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	const scale = 4000
	fmt.Printf("loading synthetic NREF data (scale %d)...\n", scale)
	if err := nref.NewGenerator(scale, 7).Load(sys.DB); err != nil {
		log.Fatal(err)
	}

	workload := nref.Complex50(scale)
	run := func(label string) time.Duration {
		s := sys.Session()
		defer s.Close()
		start := time.Now()
		for _, q := range workload {
			if _, err := s.Exec(q); err != nil {
				log.Fatalf("workload: %v", err)
			}
		}
		d := time.Since(start)
		fmt.Printf("%-22s %8.0f ms\n", label, float64(d.Milliseconds()))
		return d
	}

	// 1. Monitoring: the sensors record every statement while the
	//    workload runs.
	before := run("untuned workload:")

	// 2. Storing: one daemon cycle persists the collected data.
	if err := sys.Poll(); err != nil {
		log.Fatal(err)
	}

	// 3. Analysing.
	rep, err := sys.Analyze()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nanalyzer: %d statements inspected, %d with diverging estimates\n",
		len(rep.Statements), rep.DivergentCount)
	for _, r := range rep.Recommendations {
		fmt.Printf("  [%s] %s\n", r.Kind, r.SQL)
	}

	// 4. Implementing.
	if err := sys.Apply(rep); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nrecommendations applied; monitoring switched off for the re-run")
	sys.Monitor.SetEnabled(false)

	after := run("tuned workload:")
	fmt.Printf("\nruntime after tuning: %.0f%% of the untuned run\n",
		float64(after)/float64(before)*100)
}
