// Whatif demonstrates the virtual-index mechanism the analyzer is
// built on: hypothetical indexes exist only in the catalog, the
// optimizer may cost plans with them, and the executor refuses to run
// such plans — exactly the AutoAdmin-style what-if interface the paper
// exploits through Ingres' indexes-are-tables design.
//
//	go run ./examples/whatif
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
)

func main() {
	dir, err := os.MkdirTemp("", "whatif-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	sys, err := core.Open(core.Options{Dir: dir})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	s := sys.Session()
	defer s.Close()

	must := func(sql string) {
		if _, err := s.Exec(sql); err != nil {
			log.Fatalf("%s: %v", sql, err)
		}
	}
	must("CREATE TABLE m (id INTEGER PRIMARY KEY, sensor INTEGER, val FLOAT)")
	for base := 0; base < 20000; base += 500 {
		stmt := "INSERT INTO m VALUES "
		for i := base; i < base+500; i++ {
			if i > base {
				stmt += ", "
			}
			stmt += fmt.Sprintf("(%d, %d, %d.5)", i, i%200, i%97)
		}
		must(stmt)
	}

	query := "SELECT val FROM m WHERE sensor = 42"

	plan, err := s.Explain(query, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("current plan (no index on sensor):")
	fmt.Print(plan.String())
	fmt.Printf("estimated total cost: %.1f\n\n", plan.Est.Total())

	// A virtual index: catalog-only, zero build cost, zero storage.
	must("CREATE VIRTUAL INDEX vx_sensor ON m (sensor)")

	whatIf, err := s.Explain(query, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("what-if plan (virtual index admitted):")
	fmt.Print(whatIf.String())
	fmt.Printf("estimated total cost: %.1f (%.1fx cheaper)\n\n",
		whatIf.Est.Total(), plan.Est.Total()/whatIf.Est.Total())

	// Normal execution ignores virtual indexes entirely.
	res, err := s.Exec(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("executing normally still works (%d rows) and used: %v\n",
		len(res.Rows), res.Plan.UsedIndexes)

	// The verdict was favourable: materialize the index for real.
	must("DROP INDEX vx_sensor")
	must("CREATE INDEX ix_sensor ON m (sensor)")
	res, err = s.Exec(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after materializing: %d rows via %v, estimated cost %.1f\n",
		len(res.Rows), res.Plan.UsedIndexes, res.Plan.Est.Total())
}
