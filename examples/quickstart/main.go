// Quickstart: open a monitored database, run some SQL, and read the
// monitoring data back over plain SQL through the IMA virtual tables.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
)

func main() {
	dir, err := os.MkdirTemp("", "quickstart-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Open the integrated system: engine + monitor + IMA + daemon.
	sys, err := core.Open(core.Options{Dir: dir})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	s := sys.Session()
	defer s.Close()

	must := func(sql string) {
		if _, err := s.Exec(sql); err != nil {
			log.Fatalf("%s: %v", sql, err)
		}
	}
	must(`CREATE TABLE books (
		id INTEGER PRIMARY KEY,
		title VARCHAR(64),
		author VARCHAR(64),
		year INTEGER)`)
	must(`INSERT INTO books VALUES
		(1, 'The INGRES Papers', 'Stonebraker', 1986),
		(2, 'A Relational Model of Data', 'Codd', 1970),
		(3, 'Database Cracking', 'Idreos', 2007),
		(4, 'AutoAdmin What-If', 'Chaudhuri', 1998)`)

	res, err := s.Exec("SELECT title, year FROM books WHERE year < 2000 ORDER BY year")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("books before 2000:")
	for _, row := range res.Rows {
		fmt.Printf("  %s (%s)\n", row[0], row[1])
	}

	// Everything the engine just did was monitored in-core. The data
	// is in main-memory ring buffers, readable as ordinary tables:
	res, err = s.Exec(`SELECT kind, query_text, frequency FROM ima_statements ORDER BY kind`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nmonitored statements (from the IMA virtual table):")
	for _, row := range res.Rows {
		fmt.Printf("  %-14s x%-3s %.60s\n", row[0], row[2], row[1].S)
	}

	res, err = s.Exec("SELECT statements, cache_hits, cache_misses, db_bytes FROM ima_statistics")
	if err != nil {
		log.Fatal(err)
	}
	r := res.Rows[0]
	fmt.Printf("\nsystem statistics: %s statements, %s cache hits, %s misses, %s bytes on disk\n",
		r[0], r[1], r[2], r[3])
}
