// Remote demonstrates the IMA remote-monitoring claim: a "DBA
// workstation" connects to the running server over TCP and watches the
// system purely through SQL on the virtual tables — no bespoke
// monitoring protocol.
//
//	go run ./examples/remote
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/netsql"
	"repro/internal/nref"
)

func main() {
	dir, err := os.MkdirTemp("", "remote-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// The "server machine": a monitored database with some activity.
	sys, err := core.Open(core.Options{Dir: dir})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	if err := nref.NewGenerator(1000, 3).Load(sys.DB); err != nil {
		log.Fatal(err)
	}
	srv := netsql.NewServer(sys.DB)
	addr, err := srv.Listen(context.Background(), "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("server listening on %s\n\n", addr)

	// Local application traffic.
	app := sys.Session()
	for i := 0; i < 25; i++ {
		if _, err := app.Exec(nref.PointSelectStatement(i, 1000)); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := app.Exec("SELECT COUNT(*) FROM protein JOIN organism ON protein.nref_id = organism.nref_id"); err != nil {
		log.Fatal(err)
	}
	app.Close()

	// The "DBA workstation": a plain remote SQL session.
	dba, err := netsql.Dial(addr.String())
	if err != nil {
		log.Fatal(err)
	}
	defer dba.Close()

	resp, err := dba.Exec(`SELECT kind, COUNT(*), SUM(frequency)
		FROM ima_statements GROUP BY kind ORDER BY kind`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("remote view of the statement mix:")
	for _, r := range resp.Rows {
		fmt.Printf("  %-8s %3s distinct, %4s executions\n", r[0], r[1], r[2])
	}

	resp, err = dba.Exec(`SELECT table_name, frequency, data_pages, overflow_pages
		FROM ima_tables WHERE frequency > 0 ORDER BY frequency DESC`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nremote view of table usage:")
	for _, r := range resp.Rows {
		fmt.Printf("  %-12s used %3s times, %3s pages (%s overflow)\n", r[0], r[1], r[2], r[3])
	}

	resp, err = dba.Exec("SELECT statements, cache_hits, cache_misses FROM ima_statistics")
	if err != nil {
		log.Fatal(err)
	}
	r := resp.Rows[0]
	fmt.Printf("\nremote system statistics: %s statements, %s hits / %s misses\n", r[0], r[1], r[2])
}
